"""Unit tests for sessions, subscriber queues, and the manager."""

import threading

import pytest

from repro.memsim import MachineConfig
from repro.service import ProfilingSession, ServiceError, SessionManager, SubscriberQueue
from repro.tiering import TieredSimulator
from repro.tiering.policies import HistoryPolicy
from repro.workloads import make_workload

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}


def _session(session_id="s1", **kw):
    kw.setdefault("workload", "gups")
    kw.setdefault("workload_kwargs", dict(SMALL))
    kw.setdefault("tier1_ratio", 0.125)
    return ProfilingSession(session_id, **kw)


class TestSubscriberQueue:
    def test_drop_oldest_keeps_tail(self):
        q = SubscriberQueue("sub", "s1", max_queue=4)
        for i in range(10):
            q.push("epoch", {"epoch": i})
        assert len(q) == 4
        frames = q.drain()
        assert [f["data"]["epoch"] for f in frames] == [6, 7, 8, 9]
        assert frames[-1]["seq"] == 9
        assert q.dropped == 6
        assert len(q) == 0

    def test_seq_monotonic_across_drains(self):
        q = SubscriberQueue("sub", "s1", max_queue=8)
        q.push("epoch", {})
        q.drain()
        frame = q.push("epoch", {})
        assert frame["seq"] == 1

    def test_dropped_counter_in_frames(self):
        q = SubscriberQueue("sub", "s1", max_queue=1)
        q.push("epoch", {"epoch": 0})
        frame = q.push("epoch", {"epoch": 1})
        assert frame["dropped"] == 1

    def test_bad_params(self):
        with pytest.raises(ServiceError):
            SubscriberQueue("sub", "s1", max_queue=0)
        with pytest.raises(ServiceError):
            SubscriberQueue("sub", "s1", max_rate_hz=0)


class TestProfilingSession:
    def test_step_returns_epoch_telemetry(self):
        s = _session(seed=1)
        out = s.step(2)
        assert [e["epoch"] for e in out["epochs"]] == [0, 1]
        assert out["epochs_run"] == 2
        assert out["step_seconds"] > 0
        epoch = out["epochs"][0]
        assert set(epoch) >= {
            "epoch", "accesses", "mem_accesses", "hitrate",
            "promoted", "demoted", "runtime_s", "latency",
        }
        assert epoch["latency"]["total_s"] >= epoch["latency"]["base_s"]

    def test_bit_identical_to_direct_simulator(self):
        s = _session(seed=42)
        frames = []
        sub = s.subscribe(max_queue=16)
        s.step(3)
        frames = sub.drain()

        sim = TieredSimulator(
            make_workload("gups", **SMALL),
            HistoryPolicy(),
            tier1_ratio=0.125,
            machine_config=MachineConfig.scaled(ibs_period=16),
            seed=42,
        )
        res = sim.run(3)
        assert len(frames) == 3
        for frame, epoch in zip(frames, res.epochs):
            assert frame["data"]["hitrate"] == epoch.hitrate
            assert frame["data"]["promoted"] == epoch.promoted
            assert frame["data"]["demoted"] == epoch.demoted
            assert frame["data"]["runtime_s"] == epoch.runtime_s

    def test_stats_structure(self):
        s = _session()
        s.step(1)
        stats = s.stats()
        assert stats["session"]["workload"] == "gups"
        assert stats["daemon"]["programs"] == ["gups"]
        assert stats["result"]["epochs_run"] == 1
        assert stats["timings"]["step"]["items"] == 1

    def test_numa_maps(self):
        s = _session()
        s.step(1)
        text = s.numa_maps()
        assert "# pid" in text
        with pytest.raises(ServiceError):
            s.numa_maps([424242])

    def test_reconfigure_routes_trace_period(self):
        s = _session()
        s.reconfigure({"trace_sample_period": 8})
        assert s.sim.machine.ibs.period == 8

    def test_reconfigure_rejects_unknown_key(self):
        s = _session()
        with pytest.raises(ServiceError):
            s.reconfigure({"bogus": 1})
        with pytest.raises(ServiceError):
            s.reconfigure({})

    def test_unknown_workload_and_policy(self):
        with pytest.raises(ServiceError):
            _session(workload="doom")
        with pytest.raises(ServiceError):
            _session(policy="vibes")

    def test_step_after_close_rejected(self):
        s = _session()
        s.step(1)
        summary = s.close()
        assert summary["epochs_run"] == 1
        with pytest.raises(ServiceError):
            s.step(1)

    def test_unsubscribe_stops_frames(self):
        s = _session()
        sub = s.subscribe()
        assert s.unsubscribe(sub.subscription_id)
        s.step(1)
        assert sub.drain() == []
        assert not s.unsubscribe(sub.subscription_id)

    def test_notify_called_per_epoch(self):
        s = _session()
        calls = []
        s.subscribe(notify=lambda: calls.append(1))
        s.step(2)
        assert len(calls) == 2


class TestSessionManager:
    def _manager(self, **kw):
        kw.setdefault("max_sessions", 2)
        return SessionManager(**kw)

    def _create(self, mgr, **kw):
        kw.setdefault("workload", "gups")
        kw.setdefault("workload_kwargs", dict(SMALL))
        return mgr.create(**kw)

    def test_admission_limit(self):
        mgr = self._manager()
        self._create(mgr)
        self._create(mgr)
        with pytest.raises(ServiceError) as exc:
            self._create(mgr)
        assert exc.value.code == "at_capacity"

    def test_slot_released_on_failed_create(self):
        mgr = self._manager(max_sessions=1)
        with pytest.raises(ServiceError):
            self._create(mgr, workload="doom")
        self._create(mgr)  # the reserved slot came back

    def test_get_and_close(self):
        mgr = self._manager()
        s = self._create(mgr)
        assert mgr.get(s.session_id) is s
        mgr.close(s.session_id)
        with pytest.raises(ServiceError) as exc:
            mgr.get(s.session_id)
        assert exc.value.code == "unknown_session"
        with pytest.raises(ServiceError):
            mgr.close(s.session_id)

    def test_idle_eviction_with_fake_clock(self):
        now = [0.0]
        mgr = SessionManager(max_sessions=4, idle_ttl_s=10.0, clock=lambda: now[0])
        a = self._create(mgr)
        now[0] = 8.0
        b = self._create(mgr)
        assert mgr.evict_idle() == []
        now[0] = 15.0
        assert mgr.evict_idle() == [a.session_id]
        assert len(mgr) == 1
        assert mgr.get(b.session_id) is b
        assert a.closed

    def test_eviction_disabled(self):
        now = [0.0]
        mgr = SessionManager(idle_ttl_s=0.0, clock=lambda: now[0])
        self._create(mgr)
        now[0] = 1e9
        assert mgr.evict_idle() == []

    def test_close_all_and_list(self):
        mgr = self._manager()
        a = self._create(mgr)
        listed = mgr.list_sessions()
        assert [s["session"] for s in listed] == [a.session_id]
        assert mgr.close_all() == [a.session_id]
        assert len(mgr) == 0

    def test_tenant_quota_enforced_and_released(self):
        mgr = SessionManager(max_sessions=8, tenant_quota=1)
        a = self._create(mgr, tenant="acme")
        assert a.tenant == "acme"
        with pytest.raises(ServiceError) as exc:
            self._create(mgr, tenant="acme")
        assert exc.value.code == "overloaded"
        b = self._create(mgr, tenant="globex")  # other tenants unaffected
        assert mgr.tenants() == {"acme": 1, "globex": 1}
        mgr.close(a.session_id)
        self._create(mgr, tenant="acme")  # quota slot came back
        mgr.close_all()
        assert mgr.tenants() == {}
        self._create(mgr, tenant="globex")  # close_all released b's slot
        assert b.closed

    def test_tenant_quota_released_on_failed_create(self):
        mgr = SessionManager(max_sessions=8, tenant_quota=1)
        with pytest.raises(ServiceError):
            self._create(mgr, tenant="acme", workload="doom")
        self._create(mgr, tenant="acme")  # reservation was rolled back

    def test_tenant_param_validation(self):
        mgr = self._manager()
        for bad in ("", 7, None):
            with pytest.raises(ServiceError) as exc:
                self._create(mgr, tenant=bad)
            assert exc.value.code == "bad_params"

    def test_close_all_rejects_mid_construction_create(self):
        # A create whose (slow, unlocked) construction straddles a
        # close_all() must not insert a live session after the drain,
        # and its reserved tenant slot must not leak.
        building, release = threading.Event(), threading.Event()

        def slow_factory(session_id, **params):
            building.set()
            assert release.wait(timeout=60)
            return ProfilingSession(session_id, **params)

        mgr = SessionManager(
            max_sessions=4, tenant_quota=1, session_factory=slow_factory
        )
        errors = []

        def run_create():
            try:
                mgr.create(
                    workload="gups", workload_kwargs=dict(SMALL), tenant="acme"
                )
            except ServiceError as exc:
                errors.append(exc)

        worker = threading.Thread(target=run_create, daemon=True)
        worker.start()
        assert building.wait(timeout=60)
        assert mgr.close_all() == []  # drain lands mid-construction
        release.set()
        worker.join(timeout=60)
        assert not worker.is_alive()
        assert [e.code for e in errors] == ["server_drain"]
        assert len(mgr) == 0
        # The tenant slot came back: the same tenant can create again
        # up to its quota of one.
        release.set()
        building.clear()
        s = mgr.create(workload="gups", workload_kwargs=dict(SMALL), tenant="acme")
        assert mgr.tenants() == {"acme": 1}
        mgr.close(s.session_id)
        assert mgr.tenants() == {}


class TestMidStepEvictionRace:
    """Regression: a step running longer than the idle TTL used to be
    evicted mid-step, closing the simulator out from under the stepping
    thread (the session only touch()ed when the step *completed*)."""

    def _slow_stepping_session(self, mgr, in_step, release):
        session = mgr.create(workload="gups", workload_kwargs=dict(SMALL))
        real_step = session.sim.step

        def gated_step(epochs):
            in_step.set()
            assert release.wait(timeout=60)
            return real_step(epochs)

        session.sim.step = gated_step
        return session

    def test_long_step_survives_reaper(self):
        now = [0.0]
        mgr = SessionManager(
            max_sessions=2, idle_ttl_s=5.0, clock=lambda: now[0]
        )
        in_step, release = threading.Event(), threading.Event()
        session = self._slow_stepping_session(mgr, in_step, release)
        outcome = []
        worker = threading.Thread(
            target=lambda: outcome.append(session.step(1)), daemon=True
        )
        worker.start()
        assert in_step.wait(timeout=60)
        assert session.busy
        now[0] = 1e6  # way past the TTL while the step is in flight
        assert mgr.evict_idle() == []  # busy: skipped, not evicted
        assert mgr.get(session.session_id) is session
        release.set()
        worker.join(timeout=60)
        assert not worker.is_alive()
        assert not session.closed
        assert outcome and outcome[0]["epochs_run"] == 1
        # Once the step finishes the session is genuinely idle again
        # (end_op touched at now=1e6), so the reaper may take it.
        assert not session.busy
        now[0] = 1e6 + 10.0
        assert mgr.evict_idle() == [session.session_id]

    def test_step_losing_race_to_reaper_fails_structured(self):
        # A step dispatched between the reaper's idle check and its
        # close() used to run against a closing simulator.  The claim
        # (try_mark_evicting) and begin_op share the activity lock, so
        # the loser now fails with a structured ``evicted`` error.
        now = [0.0]
        mgr = SessionManager(max_sessions=2, idle_ttl_s=5.0, clock=lambda: now[0])
        session = mgr.create(workload="gups", workload_kwargs=dict(SMALL))
        handle = mgr.get(session.session_id)  # step handler resolved...
        now[0] = 100.0
        assert mgr.evict_idle() == [session.session_id]  # ...reaper wins
        with pytest.raises(ServiceError) as exc:
            handle.step(1)  # begin_op runs after the claim
        assert exc.value.code == "evicted"

    def test_evict_claim_loses_to_inflight_op(self):
        # The converse interleaving: begin_op registered first, so the
        # reaper's atomic claim fails and the session survives.
        now = [0.0]
        mgr = SessionManager(max_sessions=2, idle_ttl_s=5.0, clock=lambda: now[0])
        session = mgr.create(workload="gups", workload_kwargs=dict(SMALL))
        stale = 100.0
        session.last_active_s = -stale  # look long-idle despite the op
        session.begin_op()
        session.last_active_s = -stale
        try:
            assert not session.try_mark_evicting(now[0], 5.0)
            assert mgr.evict_idle() == []
        finally:
            session.end_op()
        now[0] = stale + 10.0
        assert mgr.evict_idle() == [session.session_id]

    def test_begin_op_touches_at_start(self):
        # Activity is registered when the op *begins*, not when it
        # completes: a session one tick from eviction that starts a
        # step is immediately fresh.
        now = [0.0]
        session = ProfilingSession(
            "s1",
            workload="gups",
            workload_kwargs=dict(SMALL),
            clock=lambda: now[0],
        )
        now[0] = 100.0
        assert session.idle_s() == 100.0
        session.begin_op()
        assert session.idle_s() == 0.0
        assert session.busy
        session.end_op()
        assert not session.busy
