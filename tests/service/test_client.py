"""Tests for the blocking ServiceClient against a thread-hosted server."""

import os

import pytest

from repro.service import ServerThread, ServiceClient, ServiceError

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}


@pytest.fixture()
def server():
    with ServerThread(max_sessions=4, reap_interval_s=0) as srv:
        yield srv


def _create(client, **kw):
    kw.setdefault("workload", "gups")
    kw.setdefault("workload_kwargs", dict(SMALL))
    return client.create_session(**kw)


class TestBlockingClient:
    def test_full_session_flow(self, server):
        with ServiceClient(address=server.address, timeout_s=30) as client:
            assert client.ping() == {"pong": True}
            info = _create(client, seed=5)
            sid = info["session"]
            assert info["workload"] == "gups"
            assert [s["session"] for s in client.list_sessions()] == [sid]

            sub = client.subscribe(sid, max_queue=16)
            assert sub["session"] == sid
            stepped = client.step(sid, epochs=3)
            assert [e["epoch"] for e in stepped["epochs"]] == [0, 1, 2]

            events = list(client.iter_events(3, timeout_s=15))
            assert [e["data"]["epoch"] for e in events] == [0, 1, 2]
            assert all(e["session"] == sid for e in events)

            stats = client.stats(sid)
            assert stats["daemon"]["programs"] == ["gups"]
            assert "# pid" in client.numa_maps(sid)
            client.reconfigure(sid, trace_sample_period=8)
            summary = client.close_session(sid)["result"]
            assert summary["epochs_run"] == 3

    def test_events_interleave_with_responses(self, server):
        with ServiceClient(address=server.address, timeout_s=30) as client:
            sid = _create(client)["session"]
            client.subscribe(sid, max_queue=8)
            client.step(sid, epochs=2)
            # The stats response travels after/between pushed frames;
            # the client must still pair it to its request...
            assert client.stats(sid)["result"]["epochs_run"] == 2
            # ...while keeping the event frames available afterwards.
            events = list(client.iter_events(2, timeout_s=15))
            assert [e["data"]["epoch"] for e in events] == [0, 1]

    def test_error_mapping(self, server):
        with ServiceClient(address=server.address, timeout_s=30) as client:
            with pytest.raises(ServiceError) as exc:
                client.step("s404")
            assert exc.value.code == "unknown_session"
            with pytest.raises(ServiceError) as exc:
                client.request("frobnicate")
            assert exc.value.code == "unknown_op"

    def test_two_clients_two_sessions(self, server):
        with ServiceClient(address=server.address, timeout_s=30) as a, \
                ServiceClient(address=server.address, timeout_s=30) as b:
            sa = _create(a, seed=1)["session"]
            sb = _create(b, workload="xsbench", seed=2)["session"]
            assert sa != sb
            ra = a.step(sa, epochs=2)
            rb = b.step(sb, epochs=2)
            assert ra["epochs_run"] == rb["epochs_run"] == 2
            assert {s["session"] for s in a.list_sessions()} == {sa, sb}

    def test_bad_address_arguments(self):
        with pytest.raises(ValueError):
            ServiceClient()


class TestUnixSocket:
    def test_unix_socket_roundtrip(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        with ServerThread(socket_path=path, reap_interval_s=0) as srv:
            assert srv.address == path
            assert os.path.exists(path)
            with ServiceClient(socket_path=path, timeout_s=30) as client:
                sid = _create(client)["session"]
                assert client.step(sid)["epochs_run"] == 1
