"""Tests for the ledger root: provenance, meta, session directories."""

import json

import numpy as np
import pytest

from repro.ledger import Ledger, config_key


class TestConfigKey:
    def test_stable_across_key_order(self):
        a = config_key({"workload": "gups", "seed": 3})
        b = config_key({"seed": 3, "workload": "gups"})
        assert a == b

    def test_different_configs_differ(self):
        assert config_key({"seed": 1}) != config_key({"seed": 2})

    def test_numpy_scalars_coerce(self):
        assert config_key({"seed": np.int64(3)}) == config_key({"seed": 3})

    def test_non_json_values_are_loud(self):
        with pytest.raises(TypeError):
            config_key({"workload": object()})


class TestSessions:
    def test_create_records_meta(self, tmp_path):
        root = Ledger(tmp_path)
        sl = root.create_session("s1", {"workload": "gups", "seed": 1})
        sl.append("epoch", {"epoch": 0})
        sl.close()
        meta = root.load_meta("s1")
        assert meta["session"] == "s1"
        assert meta["config"] == {"workload": "gups", "seed": 1}
        assert meta["config_key"] == config_key({"workload": "gups", "seed": 1})

    def test_leftover_directory_is_archived_not_appended(self, tmp_path):
        root = Ledger(tmp_path)
        sl = root.create_session("s1", {"workload": "gups"})
        sl.append("epoch", {"epoch": 0})
        sl.close()
        # A new server life reuses the id; the fresh ledger starts at 0
        # and the stale records live on under an archived name.
        sl2 = root.create_session("s1", {"workload": "xsbench"})
        assert sl2.next_seq == 0
        sl2.close()
        archived = [
            p for p in tmp_path.iterdir() if p.name.startswith("s1.")
        ]
        assert len(archived) == 1

    def test_open_session_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Ledger(tmp_path).open_session("nope")

    def test_checkpoint_roundtrip_and_clear(self, tmp_path):
        root = Ledger(tmp_path)
        sl = root.create_session("s1", {"workload": "gups", "seed": 1})
        sl.append("epoch", {"epoch": 0})
        sl.close()
        marker = root.write_checkpoint(
            "s1", {"config_key": "abc", "epochs": 1, "tenant": "acme"}
        )
        assert marker["session"] == "s1"
        loaded = root.load_checkpoint("s1")
        assert loaded["epochs"] == 1
        assert loaded["tenant"] == "acme"
        assert json.loads(root.checkpoint_path("s1").read_text()) == loaded
        assert root.clear_checkpoint("s1") is True
        assert root.load_checkpoint("s1") is None
        assert root.clear_checkpoint("s1") is False  # already gone

    def test_checkpoint_needs_session_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Ledger(tmp_path).write_checkpoint("ghost", {"epochs": 0})

    def test_checkpoint_corrupt_is_none(self, tmp_path):
        root = Ledger(tmp_path)
        root.create_session("s1", {"workload": "gups"}).close()
        root.checkpoint_path("s1").write_text("{not json")
        assert root.load_checkpoint("s1") is None

    def test_load_meta_corrupt_is_none(self, tmp_path):
        root = Ledger(tmp_path)
        sl = root.create_session("s1", {"workload": "gups"})
        sl.close()
        (tmp_path / "s1" / "meta.json").write_text("{not json")
        assert root.load_meta("s1") is None

    def test_list_sessions_summarizes(self, tmp_path):
        root = Ledger(tmp_path)
        for i, name in enumerate(["gups", "xsbench"]):
            sl = root.create_session(f"s{i + 1}", {"workload": name})
            for e in range(i + 1):
                sl.append("epoch", {"epoch": e})
            sl.close()
        listed = root.list_sessions()
        assert [s["session"] for s in listed] == ["s1", "s2"]
        assert [s["workload"] for s in listed] == ["gups", "xsbench"]
        assert [s["epochs"] for s in listed] == [1, 2]
        # Listing is read-only: no stray segment files appear.
        for entry in listed:
            segs = list((tmp_path / entry["session"]).glob("seg-*.jsonl"))
            assert all(p.stat().st_size > 0 for p in segs)

    def test_meta_is_valid_json_on_disk(self, tmp_path):
        root = Ledger(tmp_path)
        root.create_session("s1", {"workload": "gups"}).close()
        meta = json.loads((tmp_path / "s1" / "meta.json").read_text())
        assert meta["format"] >= 1
