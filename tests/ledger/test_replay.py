"""Replay a session ledger back into a bit-identical SimulationResult."""

from repro.ledger import Ledger, iter_epoch_dicts, replay_result
from repro.service.session import ProfilingSession
from repro.service.telemetry import epoch_metrics_to_dict

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}


def _ledgered_session(tmp_path, session_id="s1", epochs=4, seed=3):
    params = {
        "workload": "gups",
        "seed": seed,
        "workload_kwargs": dict(SMALL),
    }
    root = Ledger(tmp_path)
    session = ProfilingSession(session_id, **params)
    session.attach_ledger(
        root.create_session(session_id, params, info=session.info())
    )
    session.sim.step(epochs)
    session.close()
    return root, params


class TestReplay:
    def test_replay_is_bit_identical_to_live_run(self, tmp_path):
        root, params = _ledgered_session(tmp_path, epochs=4)
        result = replay_result(
            root.open_session("s1"), meta=root.load_meta("s1")
        )
        direct = ProfilingSession("direct", **params)
        direct.sim.step(4)
        assert [epoch_metrics_to_dict(e) for e in result.epochs] == [
            epoch_metrics_to_dict(e) for e in direct.sim.result.epochs
        ]
        assert result.workload == "gups"
        assert result.tier1_capacity == direct.sim.tier1_capacity
        assert result.mean_hitrate == direct.sim.result.mean_hitrate
        assert result.total_runtime_s == direct.sim.result.total_runtime_s

    def test_iter_epoch_dicts_skips_non_epoch_records(self, tmp_path):
        root = Ledger(tmp_path)
        sl = root.create_session("s1", {"workload": "gups"})
        sl.append("epoch", {"epoch": 0})
        sl.append("error", {"code": "worker_crashed"})
        sl.append("epoch", {"epoch": 1})
        payloads = list(iter_epoch_dicts(sl.read()))
        sl.close()
        assert [p["epoch"] for p in payloads] == [0, 1]

    def test_replay_without_meta_still_exact_epochs(self, tmp_path):
        root, params = _ledgered_session(tmp_path, epochs=2)
        result = replay_result(root.open_session("s1"))
        assert len(result.epochs) == 2
        assert result.workload == ""  # placeholder, but series intact
