"""Unit tests for the append-only segmented session ledger."""

import json

import pytest

from repro.ledger.storage import SessionLedger
from repro.service.protocol import encode_payload


def _fill(ledger, n, start=0):
    for i in range(start, start + n):
        ledger.append("epoch", {"epoch": i, "hitrate": i / 10})


class TestAppendRead:
    def test_appends_are_sequential_and_readable(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        seqs = [ledger.append("epoch", {"epoch": i}) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        records = list(ledger.read())
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["data"]["epoch"] for r in records] == [0, 1, 2, 3, 4]
        assert all(r["event"] == "epoch" for r in records)
        ledger.close()

    def test_read_window_is_half_open(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        _fill(ledger, 10)
        assert [r["seq"] for r in ledger.read(3, 7)] == [3, 4, 5, 6]
        assert [r["seq"] for r in ledger.read(8)] == [8, 9]
        assert list(ledger.read(10)) == []
        ledger.close()

    def test_concurrent_reader_sees_flushed_records(self, tmp_path):
        writer = SessionLedger(tmp_path)
        _fill(writer, 3)
        # A second handle over the same directory (the replay path
        # opens its own) sees everything the writer flushed.
        reader = SessionLedger(tmp_path)
        assert [r["seq"] for r in reader.read()] == [0, 1, 2]
        reader.close()
        writer.close()

    def test_append_after_close_raises(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        ledger.append("epoch", {"epoch": 0})
        ledger.close()
        with pytest.raises(ValueError):
            ledger.append("epoch", {"epoch": 1})

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SessionLedger(tmp_path, fsync="sometimes")


class TestBatchedAppend:
    def test_append_many_assigns_sequential_seqs(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        first = ledger.append_many(
            [("epoch", encode_payload({"epoch": i})) for i in range(5)]
        )
        assert first == 0
        assert ledger.next_seq == 5
        second = ledger.append_many([("error", encode_payload({"code": "x"}))])
        assert second == 5
        records = list(ledger.read())
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4, 5]
        assert [r["data"].get("epoch") for r in records[:5]] == [0, 1, 2, 3, 4]
        ledger.close()

    def test_empty_batch_is_a_noop(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        _fill(ledger, 3)
        assert ledger.append_many([]) == 3
        assert ledger.next_seq == 3
        ledger.close()

    def test_batch_shares_one_timestamp(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        ledger.append_many(
            [("epoch", encode_payload({"epoch": i})) for i in range(4)]
        )
        ledger.append("epoch", {"epoch": 4})
        records = list(ledger.read())
        batch_stamps = {r["unix"] for r in records[:4]}
        assert len(batch_stamps) == 1
        assert all(isinstance(r["unix"], float) for r in records)
        ledger.close()

    def test_always_fsyncs_once_per_batch(self, tmp_path, monkeypatch):
        ledger = SessionLedger(tmp_path, fsync="always")
        calls = []
        monkeypatch.setattr(
            "repro.ledger.storage.os.fsync", lambda fd: calls.append(fd)
        )
        ledger.append_many(
            [("epoch", encode_payload({"epoch": i})) for i in range(16)]
        )
        assert len(calls) == 1  # one batch, one fsync
        ledger.append("epoch", {"epoch": 16})
        assert len(calls) == 2  # a 1-record batch still pays exactly one
        ledger.close()

    def test_append_encoded_is_bit_identical_to_append(self, tmp_path):
        data = {"epoch": 1, "hitrate": 0.5, "note": 'tricky ,"unix": text'}
        ledger = SessionLedger(tmp_path)
        ledger.append("epoch", data)
        ledger.append_encoded("epoch", encode_payload(data))
        payloads = [p for _, _, p in ledger.read_encoded()]
        assert payloads[0] == payloads[1] == encode_payload(data)
        ledger.close()

    def test_read_encoded_matches_read_across_segments(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=256)
        for i in range(20):
            ledger.append(
                "epoch" if i % 3 else "error",
                {"epoch": i, "s": f'","data": {i} ,"unix":'},
            )
        decoded = list(ledger.read(3, 17))
        encoded = list(ledger.read_encoded(3, 17))
        assert [seq for seq, _, _ in encoded] == [r["seq"] for r in decoded]
        assert [event for _, event, _ in encoded] == [
            r["event"] for r in decoded
        ]
        for (_, _, payload), record in zip(encoded, decoded):
            assert json.loads(payload) == record["data"]
        ledger.close()

    def test_rotation_seals_without_rereading_the_segment(
        self, tmp_path, monkeypatch
    ):
        ledger = SessionLedger(tmp_path, segment_bytes=256)

        def bomb(self, seg, from_seq):
            raise AssertionError("append path re-read a segment file")

        with monkeypatch.context() as patch:
            patch.setattr(SessionLedger, "_iter_segment_lines", bomb)
            _fill(ledger, 30)  # rotates several times under the bomb
        ledger.close()
        sidecars = sorted(tmp_path.glob("seg-*.idx"))
        assert sidecars
        for sidecar in sidecars:
            index = json.loads(sidecar.read_text())
            seg = sidecar.with_suffix(".jsonl")
            lines = seg.read_bytes().splitlines(keepends=True)
            assert index["count"] == len(lines)
            assert index["bytes"] == seg.stat().st_size
            # Sealed offsets must point at the real line starts.
            expected, offset = [], 0
            for line in lines:
                expected.append(offset)
                offset += len(line)
            assert index["offsets"] == expected
            assert index["epochs"] == sum(
                1 for line in lines if b'"event":"epoch"' in line
            )

    def test_mixed_batch_counts_only_epochs(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        ledger.append_many(
            [
                ("epoch", encode_payload({"epoch": 0})),
                ("error", encode_payload({"code": "evicted"})),
                ("epoch", encode_payload({"epoch": 1})),
            ]
        )
        assert ledger.epoch_count == 2
        assert ledger.stats()["epochs"] == 2
        ledger.close()


class TestRotation:
    def test_rotation_seals_segments_with_sidecars(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=256)
        _fill(ledger, 20)
        ledger.close()
        segments = sorted(tmp_path.glob("seg-*.jsonl"))
        sidecars = sorted(tmp_path.glob("seg-*.idx"))
        assert len(segments) > 1
        # Every sealed segment (all but the active tail) has an index.
        assert len(sidecars) == len(segments) - 1
        index = json.loads(sidecars[0].read_text())
        assert index["first_seq"] == 0
        assert len(index["offsets"]) == index["count"]
        assert index["epochs"] == index["count"]

    def test_read_spans_segment_boundaries_in_order(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=128)
        _fill(ledger, 30)
        assert [r["seq"] for r in ledger.read()] == list(range(30))
        # Seek-by-seq lands mid-chain via the sidecar offsets.
        assert [r["seq"] for r in ledger.read(17, 20)] == [17, 18, 19]
        ledger.close()


class TestRecovery:
    def test_reopen_resumes_numbering(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=128)
        _fill(ledger, 12)
        ledger.close()
        reopened = SessionLedger(tmp_path, segment_bytes=128)
        assert reopened.next_seq == 12
        assert reopened.epoch_count == 12
        assert reopened.append("epoch", {"epoch": 12}) == 12
        assert [r["seq"] for r in reopened.read()] == list(range(13))
        reopened.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        _fill(ledger, 5)
        ledger.close()
        seg = next(iter(sorted(tmp_path.glob("seg-*.jsonl"))))
        with open(seg, "ab") as fh:
            fh.write(b'{"seq": 5, "event": "epo')  # killed mid-append
        reopened = SessionLedger(tmp_path)
        assert reopened.next_seq == 5
        assert [r["seq"] for r in reopened.read()] == [0, 1, 2, 3, 4]
        # The torn bytes are gone; appends continue cleanly.
        assert reopened.append("epoch", {"epoch": 5}) == 5
        assert [r["seq"] for r in reopened.read()][-1] == 5
        reopened.close()

    def test_misnumbered_record_truncates_the_rest(self, tmp_path):
        ledger = SessionLedger(tmp_path)
        _fill(ledger, 3)
        ledger.close()
        seg = next(iter(sorted(tmp_path.glob("seg-*.jsonl"))))
        with open(seg, "ab") as fh:
            fh.write(b'{"seq": 99, "event": "epoch", "data": {}}\n')
        reopened = SessionLedger(tmp_path)
        assert reopened.next_seq == 3
        reopened.close()

    def test_interior_segment_missing_sidecar_is_resealed(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=128)
        _fill(ledger, 20)
        ledger.close()
        sidecar = sorted(tmp_path.glob("seg-*.idx"))[0]
        sidecar.unlink()
        reopened = SessionLedger(tmp_path, segment_bytes=128)
        assert [r["seq"] for r in reopened.read()] == list(range(20))
        assert sidecar.exists()  # rebuilt on reopen
        reopened.close()


class TestRetention:
    def test_size_retention_drops_oldest_sealed_segments(self, tmp_path):
        ledger = SessionLedger(
            tmp_path, segment_bytes=128, retention_bytes=512
        )
        _fill(ledger, 60)
        assert ledger.first_seq > 0
        remaining = [r["seq"] for r in ledger.read()]
        assert remaining == list(range(ledger.first_seq, 60))
        # Reading below first_seq just starts at the oldest survivor.
        assert [r["seq"] for r in ledger.read(0)][0] == ledger.first_seq
        total = sum(p.stat().st_size for p in tmp_path.glob("seg-*.jsonl"))
        assert total <= 512 + 256  # at most one overfull boundary
        ledger.close()

    def test_age_retention_drops_old_segments(self, tmp_path):
        import os
        import time

        ledger = SessionLedger(
            tmp_path, segment_bytes=128, retention_age_s=3600
        )
        _fill(ledger, 12)
        sealed = sorted(tmp_path.glob("seg-*.jsonl"))[0]
        old = time.time() - 7200
        os.utime(sealed, (old, old))
        assert ledger.compact() >= 1
        assert ledger.first_seq > 0
        ledger.close()

    def test_stats_reports_shape(self, tmp_path):
        ledger = SessionLedger(tmp_path, segment_bytes=128)
        _fill(ledger, 10)
        ledger.append("error", {"code": "evicted"})
        stats = ledger.stats()
        assert stats["next_seq"] == 11
        assert stats["epochs"] == 10
        assert stats["first_seq"] == 0
        assert stats["segments"] >= 1
        assert stats["bytes"] > 0
        ledger.close()
