"""Tests for the shared atomic-write helpers (cache + ledger reuse)."""

import pytest

from repro.ioutil import atomic_output, atomic_write_bytes


class TestAtomicOutput:
    def test_success_renames_into_place(self, tmp_path):
        target = tmp_path / "out.json"
        with atomic_output(target) as tmp:
            tmp.write_bytes(b"{}")
            assert not target.exists()  # nothing visible mid-write
        assert target.read_bytes() == b"{}"
        assert list(tmp_path.iterdir()) == [target]  # tmp cleaned up

    def test_failure_leaves_no_partial_file(self, tmp_path):
        target = tmp_path / "out.json"
        with pytest.raises(RuntimeError):
            with atomic_output(target) as tmp:
                tmp.write_bytes(b"partial")
                raise RuntimeError("writer died")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_tmp_name_preserves_suffix(self, tmp_path):
        # np.savez appends its own .npz to suffixless paths, so the
        # temp file must keep the target's suffix.
        with atomic_output(tmp_path / "run.npz") as tmp:
            assert tmp.suffix == ".npz"
            tmp.write_bytes(b"x")

    def test_overwrites_existing_target(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with atomic_output(target) as tmp:
            tmp.write_bytes(b"new")
        assert target.read_bytes() == b"new"


class TestAtomicWriteBytes:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_durable_roundtrip(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"hello", durable=True)
        assert target.read_bytes() == b"hello"
