"""The step-latency SLO gate: the pytest side of the CI contract.

CI runs ``repro loadtest --slo-step-p99`` against a spawned server and
fails the job when the gate trips; this test asserts the same contract
in-process so a latency regression fails ``pytest`` even without the
bench job.  The threshold is deliberately generous (shared CI boxes
jitter wildly) and overridable via ``REPRO_SLO_STEP_P99_S`` for
machines with known-tight latency.
"""

import os

import pytest

from repro.loadgen import LoadTestConfig, run_load_test
from repro.obs import metrics as obs_metrics
from repro.service import ServerThread

SMALL = {"footprint_pages": 256, "accesses_per_epoch": 1000}

#: Default p99 budget for one single-epoch step of the SMALL workload
#: under mild concurrency.  Typical observed p99 on a 1-core container
#: is ~15 ms; 5 s only trips on a real serialization/regression bug,
#: not scheduler noise.
DEFAULT_SLO_STEP_P99_S = 5.0


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
    yield
    obs_metrics.set_default_registry(previous)


def test_step_p99_meets_slo():
    threshold = float(
        os.environ.get("REPRO_SLO_STEP_P99_S", DEFAULT_SLO_STEP_P99_S)
    )
    cfg = LoadTestConfig(
        sessions=24,
        arrival_rate=200.0,
        steps_per_session=3,
        epochs_per_step=1,
        workload="gups",
        workload_kwargs=dict(SMALL),
        connections=2,
        subscribe_fraction=0.25,
        stats_fraction=0.25,
        tenants=2,
        seed=11,
        timeout_s=180.0,
    )
    with ServerThread(
        port=0, workers=0, max_sessions=cfg.sessions, reap_interval_s=0
    ) as srv:
        report = run_load_test(srv.address, cfg, slo_step_p99_s=threshold)
    sessions = report["sessions"]
    assert sessions["completed"] == cfg.sessions, sessions
    slo = report["slo"]
    assert slo["ok"] is True, (
        f"step p99 {slo['step_p99_s']:.4f}s exceeds the "
        f"{threshold:g}s SLO (override with REPRO_SLO_STEP_P99_S)"
    )
