"""The load generator end to end against a real threaded server."""

import asyncio
import json

import pytest

from repro.loadgen import LoadTestConfig, run_load_test, write_report
from repro.loadgen.report import LatencyRecorder, evaluate_slo, percentile
from repro.obs import metrics as obs_metrics
from repro.service import ServerThread

SMALL = {"footprint_pages": 256, "accesses_per_epoch": 1000}


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
    yield
    obs_metrics.set_default_registry(previous)


def small_config(**overrides) -> LoadTestConfig:
    base = dict(
        sessions=16,
        arrival_rate=400.0,
        steps_per_session=2,
        epochs_per_step=1,
        workload="gups",
        workload_kwargs=dict(SMALL),
        connections=2,
        subscribe_fraction=1.0,
        stats_fraction=0.5,
        tenants=2,
        seed=7,
        timeout_s=120.0,
    )
    base.update(overrides)
    return LoadTestConfig(**base)


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestLatencyRecorder:
    def test_summary_and_obs_mirroring(self):
        registry = obs_metrics.MetricsRegistry()
        rec = LatencyRecorder(registry=registry)
        for ms in (1, 2, 3, 4, 5):
            rec.record("step", ms / 1000)
        rec.count_error("step", "overloaded")
        summary = rec.summary()
        assert summary["step"]["count"] == 5
        assert summary["step"]["errors"] == {"overloaded": 1}
        assert summary["step"]["p50_s"] == pytest.approx(0.003)
        snap = registry.snapshot()
        hist = snap["repro_loadgen_op_seconds"]["samples"][0]
        assert hist["count"] == 5
        outcomes = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snap["repro_loadgen_ops_total"]["samples"]
        }
        assert outcomes[(("op", "step"), ("outcome", "ok"))] == 5
        assert outcomes[(("op", "step"), ("outcome", "overloaded"))] == 1


class TestEvaluateSlo:
    def test_no_threshold(self):
        assert evaluate_slo({"step": {"p99_s": 0.5}}, None)["ok"] is None

    def test_pass_and_fail(self):
        summary = {"step": {"p99_s": 0.5}}
        assert evaluate_slo(summary, 1.0)["ok"] is True
        assert evaluate_slo(summary, 0.1)["ok"] is False

    def test_no_steps_fails_when_gated(self):
        assert evaluate_slo({}, 1.0)["ok"] is False


class TestRunLoadTest:
    def test_full_run_report(self, tmp_path):
        cfg = small_config()
        with ServerThread(
            port=0, workers=0, max_sessions=cfg.sessions, reap_interval_s=0
        ) as srv:
            report = run_load_test(srv.address, cfg, slo_step_p99_s=30.0)

        sessions = report["sessions"]
        assert sessions["target"] == cfg.sessions
        assert sessions["created"] == cfg.sessions
        assert sessions["completed"] == cfg.sessions
        assert sessions["rejected"] == {}
        assert sessions["peak_concurrent"] >= 1

        ops = report["ops"]
        assert ops["create"]["count"] == cfg.sessions
        assert ops["step"]["count"] == cfg.sessions * cfg.steps_per_session
        assert ops["close"]["count"] == cfg.sessions
        assert ops["subscribe"]["count"] == cfg.sessions  # fraction 1.0
        for stats in ops.values():
            if stats["count"]:
                assert 0 < stats["p50_s"] <= stats["p99_s"] <= stats["max_s"]

        # Every session subscribed: epoch frames flowed and none of the
        # per-subscription accounting went missing.
        events = report["events"]
        assert events["subscriptions_seen"] == cfg.sessions
        assert events["epoch_frames"] > 0
        assert events["goodbyes"] == {}

        assert report["slo"]["ok"] is True
        assert report["server"]["sessions"] == 0  # all closed by the end
        assert "repro_loadgen_op_seconds" in report["metrics"]

        out = tmp_path / "BENCH_load.json"
        write_report(out, report)
        assert json.loads(out.read_text())["sessions"]["completed"] == cfg.sessions

    def test_tenants_spread_across_names(self):
        cfg = small_config(sessions=8, subscribe_fraction=0.0, tenants=4)
        with ServerThread(
            port=0, workers=0, max_sessions=cfg.sessions, reap_interval_s=0
        ) as srv:
            report = run_load_test(srv.address, cfg)
        assert report["sessions"]["completed"] == 8
        # server_info's tenants map is empty post-run (all closed), but
        # nothing was rejected despite 4 distinct tenant names.
        assert report["sessions"]["rejected"] == {}

    def test_timeout_reaps_in_flight_sessions(self):
        # The wall-clock cap (asyncio.wait_for — available on 3.10,
        # unlike asyncio.timeout) fires while every session is
        # mid-think: the run cancels the spawned session tasks instead
        # of leaking them, and still returns a valid report flagged
        # ``timed_out`` rather than raising (a blown deadline is a
        # result, not a crash).
        cfg = small_config(
            sessions=4,
            arrival_rate=1000.0,
            subscribe_fraction=0.0,
            stats_fraction=0.0,
            think_s=60.0,
            timeout_s=1.0,
        )
        with ServerThread(
            port=0, workers=0, max_sessions=cfg.sessions, reap_interval_s=0
        ) as srv:
            report = run_load_test(srv.address, cfg)
        assert report["timed_out"] is True
        assert report["sessions"]["completed"] == 0
        # No session finished a step, yet the report is still a valid,
        # writable document with a clean (unjudged) SLO verdict.
        assert report["slo"]["ok"] is None

    def test_zero_completed_ops_still_writes_report_and_judges_slo(
        self, tmp_path
    ):
        # Every session's first (and only) step outlives the deadline
        # (~1500 epochs at a few ms each vs a 1 s budget): zero steps
        # complete, yet the run emits valid BENCH_load.json and the SLO
        # gate fails cleanly (no latency promise was met) instead of
        # raising on empty percentiles.
        cfg = small_config(
            sessions=3,
            arrival_rate=1000.0,
            steps_per_session=1,
            epochs_per_step=1500,
            subscribe_fraction=0.0,
            stats_fraction=0.0,
            timeout_s=1.0,
        )
        with ServerThread(
            port=0, workers=0, max_sessions=cfg.sessions, reap_interval_s=0
        ) as srv:
            report = run_load_test(srv.address, cfg, slo_step_p99_s=0.5)
        assert report["timed_out"] is True
        assert report["slo"] == {
            "step_p99_s": None,
            "threshold_s": 0.5,
            "ok": False,
        }
        assert report["sessions"]["completed"] == 0
        assert report["sessions"]["cancelled"] == 3
        out = tmp_path / "BENCH_load.json"
        write_report(out, report)
        assert json.loads(out.read_text())["slo"]["ok"] is False

    def test_evict_resume_lifecycle_mix(self, tmp_path):
        # Checkpoint/resume soak in miniature: every session runs half
        # its steps, idles past the TTL, is checkpointed to disk by the
        # reaper, resumes through normal admission, and finishes.
        cfg = small_config(
            sessions=3,
            arrival_rate=50.0,
            steps_per_session=2,
            subscribe_fraction=0.0,
            stats_fraction=0.0,
            evict_resume_fraction=1.0,
            evict_wait_s=30.0,
        )
        with ServerThread(
            port=0,
            workers=0,
            max_sessions=cfg.sessions,
            idle_ttl_s=0.6,
            reap_interval_s=0.05,
            ledger_dir=str(tmp_path),
            evict_to_disk=True,
        ) as srv:
            report = run_load_test(srv.address, cfg)
        sessions = report["sessions"]
        assert sessions["completed"] == 3
        assert sessions["resumed"] == 3
        assert sessions["resume_failed"] == 0
        # Server-side lifetime counters agree: every checkpointed
        # session came back (what the CI soak asserts).
        assert report["server"]["sessions_checkpointed"] >= 3
        assert (
            report["server"]["sessions_resumed"]
            == report["server"]["sessions_checkpointed"]
        )
        assert report["ops"]["resume"]["count"] == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadTestConfig(sessions=0)
        with pytest.raises(ValueError):
            LoadTestConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            LoadTestConfig(connections=0)
        with pytest.raises(ValueError):
            LoadTestConfig(tenants=0)
