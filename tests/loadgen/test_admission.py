"""Backpressure on the wire: tenant quotas and the in-flight step limit."""

import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import ServerThread, ServiceClient, ServiceError

SMALL = {"footprint_pages": 256, "accesses_per_epoch": 1000}
#: A step slow enough (hundreds of ms on any box) to overlap with a
#: second request deterministically via steps_inflight polling.
SLOW = {"footprint_pages": 2048, "accesses_per_epoch": 400_000}


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
    yield
    obs_metrics.set_default_registry(previous)


class TestTenantQuota:
    def test_over_quota_create_rejected_overloaded(self):
        with ServerThread(
            port=0, workers=0, reap_interval_s=0,
            max_sessions=8, tenant_quota=1,
        ) as srv:
            with ServiceClient(address=srv.address) as c:
                first = c.create_session(
                    "gups", tenant="acme", workload_kwargs=dict(SMALL)
                )
                assert first["tenant"] == "acme"
                with pytest.raises(ServiceError) as exc:
                    c.create_session(
                        "gups", tenant="acme", workload_kwargs=dict(SMALL)
                    )
                assert exc.value.code == "overloaded"
                assert "quota" in str(exc.value)
                # Another tenant is unaffected by acme's quota.
                other = c.create_session(
                    "gups", tenant="globex", workload_kwargs=dict(SMALL)
                )
                info = c.server_info()
                assert info["tenant_quota"] == 1
                assert info["tenants"] == {"acme": 1, "globex": 1}
                # Closing releases the quota slot.
                c.close_session(first["session"])
                again = c.create_session(
                    "gups", tenant="acme", workload_kwargs=dict(SMALL)
                )
                assert again["tenant"] == "acme"
                c.close_session(again["session"])
                c.close_session(other["session"])

    def test_rejection_metrics_labelled(self):
        with ServerThread(
            port=0, workers=0, reap_interval_s=0,
            max_sessions=8, tenant_quota=1,
        ) as srv:
            with ServiceClient(address=srv.address) as c:
                c.create_session("gups", workload_kwargs=dict(SMALL))
                with pytest.raises(ServiceError):
                    c.create_session("gups", workload_kwargs=dict(SMALL))
                snap = c.metrics()
                samples = snap["repro_service_sessions_rejected_total"]["samples"]
                by_reason = {s["labels"]["reason"]: s["value"] for s in samples}
                assert by_reason == {"tenant_quota": 1}

    def test_bad_tenant_param(self):
        with ServerThread(port=0, workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                with pytest.raises(ServiceError) as exc:
                    c.create_session(
                        "gups", tenant="", workload_kwargs=dict(SMALL)
                    )
                assert exc.value.code == "bad_params"

    def test_default_tenant_when_unspecified(self):
        with ServerThread(
            port=0, workers=0, reap_interval_s=0, tenant_quota=2
        ) as srv:
            with ServiceClient(address=srv.address) as c:
                info = c.create_session("gups", workload_kwargs=dict(SMALL))
                assert info["tenant"] == "default"
                assert c.server_info()["tenants"] == {"default": 1}


class TestInflightStepLimit:
    def test_step_beyond_limit_rejected_then_recovers(self):
        with ServerThread(
            port=0, workers=0, reap_interval_s=0,
            max_sessions=4, step_workers=4, max_inflight_steps=1,
        ) as srv:
            with ServiceClient(address=srv.address, timeout_s=300) as c:
                slow = c.create_session(
                    "gups", seed=1, workload_kwargs=dict(SLOW)
                )["session"]
                fast = c.create_session(
                    "gups", seed=2, workload_kwargs=dict(SMALL)
                )["session"]
                assert c.server_info()["max_inflight_steps"] == 1

                done = threading.Event()
                errors = []

                def run_slow():
                    try:
                        with ServiceClient(
                            address=srv.address, timeout_s=300
                        ) as other:
                            other.step(slow, epochs=3)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                    finally:
                        done.set()

                thread = threading.Thread(target=run_slow, daemon=True)
                thread.start()
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if c.server_info()["steps_inflight"] == 1:
                        break
                    time.sleep(0.005)
                else:
                    pytest.fail("slow step never showed up in steps_inflight")

                with pytest.raises(ServiceError) as exc:
                    c.step(fast, epochs=1)
                assert exc.value.code == "overloaded"
                assert "in flight" in str(exc.value)

                assert done.wait(timeout=120)
                assert not errors
                thread.join(timeout=30)
                # Limit releases with the in-flight step: now admitted.
                out = c.step(fast, epochs=1)
                assert out["epochs_run"] == 1
                snap = c.metrics()
                rejected = snap["repro_service_steps_rejected_total"]["samples"]
                assert rejected[0]["value"] == 1

    def test_no_limit_by_default(self):
        with ServerThread(port=0, workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                info = c.server_info()
                assert info["max_inflight_steps"] is None
                assert info["steps_inflight"] == 0
