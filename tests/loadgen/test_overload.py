"""Degradation under pressure: frame shedding and eviction goodbyes."""

import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import ServerThread, ServiceClient, ServiceError

SMALL = {"footprint_pages": 256, "accesses_per_epoch": 1000}


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
    yield
    obs_metrics.set_default_registry(previous)


class TestDropOldestAccounting:
    def test_throttled_subscriber_sheds_but_never_miscounts(self):
        """delivered + dropped must equal frames generated, exactly.

        A tiny queue behind a 5 Hz delivery throttle guarantees drops
        while 12 epochs step at full speed; the cumulative ``dropped``
        counter in the *last* frame plus the frames actually delivered
        must account for every generated frame — no double-count, no
        silent loss.
        """
        epochs = 12
        with ServerThread(port=0, workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address, timeout_s=120) as c:
                sid = c.create_session(
                    "gups", workload_kwargs=dict(SMALL)
                )["session"]
                c.subscribe(sid, max_queue=2, max_rate_hz=5)
                c.step(sid, epochs=epochs)
                # Drain until the final frame (seq == epochs - 1): the
                # newest frame is never shed by drop-oldest, so it is
                # always delivered eventually.
                frames = []
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    frame = c.next_event(timeout_s=30)
                    frames.append(frame)
                    if frame["seq"] == epochs - 1:
                        break
                else:
                    pytest.fail("never saw the final epoch frame")

                assert frames[-1]["seq"] == epochs - 1
                dropped = frames[-1]["dropped"]
                assert dropped > 0  # the throttle really caused shedding
                assert len(frames) + dropped == epochs
                # seqs strictly increase; gaps are exactly the drops.
                seqs = [f["seq"] for f in frames]
                assert seqs == sorted(set(seqs))
                snap = c.metrics()
                shed = snap["repro_service_subscriber_dropped_total"]["samples"]
                assert shed[0]["value"] == dropped


class TestEvictionGoodbye:
    def test_goodbye_frame_precedes_unknown_session(self):
        """An idle-evicted session says goodbye on the event stream.

        The subscriber must receive a structured ``error`` frame with
        ``data.code == "evicted"`` (the crash_event_data shape) rather
        than just finding the session gone.
        """
        with ServerThread(
            port=0, workers=0, idle_ttl_s=0.2, reap_interval_s=0.05
        ) as srv:
            with ServiceClient(address=srv.address, timeout_s=60) as c:
                sid = c.create_session(
                    "gups", workload_kwargs=dict(SMALL)
                )["session"]
                c.subscribe(sid, max_queue=8)
                c.step(sid, epochs=1)
                goodbye = None
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    frame = c.next_event(timeout_s=15)
                    if frame["event"] == "error":
                        goodbye = frame
                        break
                assert goodbye is not None, "no goodbye before the deadline"
                assert goodbye["session"] == sid
                assert goodbye["data"]["code"] == "evicted"
                assert "idling" in goodbye["data"]["message"]
                with pytest.raises(ServiceError) as exc:
                    c.step(sid, epochs=1)
                assert exc.value.code == "unknown_session"
                snap = c.metrics()
                evicted = snap["repro_service_sessions_evicted_total"]["samples"]
                assert evicted[0]["value"] == 1
