"""Tests for structured JSON logging."""

import io
import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture
def capture():
    """Enable logging into a StringIO for the duration of one test."""
    stream = io.StringIO()
    obs_log.configure(enabled=True, stream=stream)
    yield stream
    obs_log.configure(enabled=False, stream=None)


def _events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogger:
    def test_one_json_object_per_line(self, capture):
        log = obs_log.get_logger("test.component")
        log.info("thing_happened", count=3)
        log.warning("thing_wobbled")
        events = _events(capture)
        assert len(events) == 2
        assert events[0]["level"] == "info"
        assert events[0]["component"] == "test.component"
        assert events[0]["event"] == "thing_happened"
        assert events[0]["count"] == 3
        assert isinstance(events[0]["ts"], float)
        assert events[1]["level"] == "warning"

    def test_bound_context_merges_into_every_event(self, capture):
        log = obs_log.get_logger("svc", worker=2)
        child = log.bind(session="s7")
        child.info("stepped", epochs=1)
        (event,) = _events(capture)
        assert event["worker"] == 2
        assert event["session"] == "s7"
        assert event["epochs"] == 1

    def test_bind_does_not_mutate_parent(self, capture):
        log = obs_log.get_logger("svc")
        log.bind(session="s1")
        log.info("plain")
        (event,) = _events(capture)
        assert "session" not in event

    def test_disabled_emits_nothing(self):
        stream = io.StringIO()
        obs_log.configure(enabled=False, stream=stream)
        obs_log.get_logger("svc").info("ignored")
        assert stream.getvalue() == ""

    def test_unknown_level_rejected(self, capture):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.get_logger("svc").log("fatal", "boom")

    def test_non_json_values_stringified(self, capture):
        import numpy as np

        log = obs_log.get_logger("svc")
        log.info("arrays", arr=np.array([1, 2]), obj=object())
        (event,) = _events(capture)
        assert event["arr"] == [1, 2]
        assert event["obj"].startswith("<object object")
