"""Tests for the in-process metrics registry and snapshot algebra."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
    render_prometheus,
    set_default_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("requests_total", "Requests")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_split_series(self, registry):
        c = registry.counter("jobs_total", "", labelnames=("stage",))
        c.inc(stage="record")
        c.inc(2, stage="evaluate")
        assert c.value(stage="record") == 1
        assert c.value(stage="evaluate") == 2

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("jobs_total", "", labelnames=("stage",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(phase="record")
        with pytest.raises(ValueError, match="expects labels"):
            registry.counter("plain_total").inc(stage="x")

    def test_cannot_decrease(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("n_total").inc(-1)

    def test_get_or_create_returns_same_handle(self, registry):
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_type_collision_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("active")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.value() == 8


class TestHistogram:
    def test_observe_buckets_cumulatively(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)  # beyond the last bound: only sum/count see it
        snap = registry.snapshot()["lat"]["samples"][0]
        assert snap["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        assert h.count() == 4

    def test_default_buckets_sorted(self, registry):
        h = registry.histogram("lat2")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_needs_buckets(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("empty", buckets=())


class TestRegistry:
    def test_snapshot_is_plain_data(self, registry):
        import json

        registry.counter("c_total", "help text").inc(3)
        registry.gauge("g", labelnames=("k",)).set(1.5, k="v")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        # Round-trips through JSON: nothing live leaks out.
        assert json.loads(json.dumps(snap)) == snap
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["help"] == "help text"
        assert snap["g"]["samples"] == [{"labels": {"k": "v"}, "value": 1.5}]

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total").inc(5)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["c_total"]["samples"] == []
        assert snap["h"]["samples"] == []

    def test_clear(self, registry):
        registry.counter("c_total").inc()
        registry.clear()
        assert registry.snapshot() == {}

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)

    def test_concurrent_increments_are_not_lost(self, registry):
        c = registry.counter("c_total")
        n, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n * per_thread


class TestMerge:
    def _snap(self, value):
        r = MetricsRegistry()
        r.counter("c_total", "help", labelnames=("k",)).inc(value, k="a")
        r.gauge("g").set(value)
        h = r.histogram("h", buckets=(1.0, 10.0))
        h.observe(value)
        return r.snapshot()

    def test_counters_gauges_histograms_sum(self):
        merged = merge_snapshots([self._snap(0.5), self._snap(5.0)])
        assert merged["c_total"]["samples"] == [
            {"labels": {"k": "a"}, "value": 5.5}
        ]
        assert merged["g"]["samples"][0]["value"] == 5.5
        hist = merged["h"]["samples"][0]
        assert hist["buckets"] == {"1.0": 1, "10.0": 2}
        assert hist["count"] == 2

    def test_disjoint_series_union(self):
        a = MetricsRegistry()
        a.counter("c_total", labelnames=("k",)).inc(k="a")
        b = MetricsRegistry()
        b.counter("c_total", labelnames=("k",)).inc(2, k="b")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["c_total"]["samples"] == [
            {"labels": {"k": "a"}, "value": 1},
            {"labels": {"k": "b"}, "value": 2},
        ]

    def test_type_conflict_rejected(self):
        a = MetricsRegistry()
        a.counter("x")
        b = MetricsRegistry()
        b.gauge("x")
        with pytest.raises(ValueError, match="in another"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_does_not_mutate_inputs(self):
        one, two = self._snap(1.0), self._snap(2.0)
        merge_snapshots([one, two])
        assert one["g"]["samples"][0]["value"] == 1.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("c_total", "Things counted", ("k",)).inc(3, k="v")
        registry.gauge("g", "A level").set(1.5)
        text = render_prometheus(registry.snapshot())
        assert "# HELP c_total Things counted" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="v"} 3' in text
        assert "g 1.5" in text
        assert text.endswith("\n")

    def test_histogram_lines(self, registry):
        h = registry.histogram("lat", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(registry.snapshot())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5.55" in text

    def test_label_escaping(self, registry):
        registry.counter("c_total", labelnames=("msg",)).inc(
            msg='say "hi"\nback\\slash'
        )
        text = render_prometheus(registry.snapshot())
        assert r'msg="say \"hi\"\nback\\slash"' in text

    def test_empty_snapshot(self):
        assert render_prometheus({}) == ""
