"""Tests for the parallel record/evaluate executor.

The load-bearing guarantees: ``jobs=1`` and ``jobs=N`` produce
bit-identical results (determinism), and a warm cache performs zero
machine simulations (amortization).
"""

import pytest

import repro.runner.executor as executor
from repro.analysis.hitrate import fig6_sweep, sweep_recorded
from repro.memsim import MachineConfig
from repro.runner import (
    GridCell,
    RecordSpec,
    RunCache,
    RunnerMetrics,
    evaluate_grid,
    record_suite,
)
from repro.workloads import WORKLOAD_NAMES

#: Shrunken Table III suite: every workload, tiny footprints/streams.
SMALL_KW = {"footprint_pages": 1024, "accesses_per_epoch": 10_000}


def _specs(names=("web-serving", "graph500"), **overrides):
    defaults = dict(
        workload_kw=dict(SMALL_KW),
        machine_config=MachineConfig.scaled(ibs_period=16),
        epochs=2,
        seed=0,
    )
    defaults.update(overrides)
    return [RecordSpec(name, **defaults) for name in names]


class TestRecordSuite:
    def test_results_aligned_with_specs(self, tmp_path):
        specs = _specs()
        runs = record_suite(specs, jobs=1, cache=RunCache(tmp_path))
        assert [r.workload for r in runs] == [s.workload for s in specs]

    def test_warm_cache_skips_all_machine_simulations(self, tmp_path, monkeypatch):
        """Acceptance: a warm cache records nothing — for all 8 workloads."""
        calls = []
        real = executor.record_run

        def counting_record_run(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor, "record_run", counting_record_run)
        specs = _specs(names=WORKLOAD_NAMES)
        cache = RunCache(tmp_path)

        cold = record_suite(specs, jobs=1, cache=cache)
        assert len(calls) == len(WORKLOAD_NAMES)

        calls.clear()
        warm = record_suite(specs, jobs=1, cache=cache)
        assert calls == [], "warm cache must skip every machine simulation"
        for a, b in zip(cold, warm):
            assert a.workload == b.workload
            assert a.n_epochs == b.n_epochs

    def test_metrics_mark_cache_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        record_suite(_specs(), jobs=1, cache=cache)
        metrics = RunnerMetrics(jobs=1)
        record_suite(_specs(), jobs=1, cache=cache, metrics=metrics)
        assert all(ev.cached for ev in metrics.events if ev.stage == "record")

    def test_parallel_record_matches_serial(self, tmp_path):
        serial = record_suite(_specs(), jobs=1)
        parallel = record_suite(_specs(), jobs=2)
        for a, b in zip(serial, parallel):
            assert a.workload == b.workload
            assert a.event_totals == b.event_totals
            for ea, eb in zip(a.epochs, b.epochs):
                assert ea.accesses == eb.accesses
                assert (ea.counts == eb.counts).all()


class TestEvaluateGrid:
    @pytest.fixture(scope="class")
    def recording(self):
        return _specs(names=("web-serving",))[0].record()

    def test_unknown_policy_rejected_eagerly(self, recording):
        with pytest.raises(ValueError, match="unknown policy"):
            evaluate_grid(recording, [GridCell("vibes", "abit", 1 / 8)], jobs=1)

    def test_parallel_cells_identical_to_serial(self, recording):
        cells = [
            GridCell(policy, source, ratio)
            for policy in ("oracle", "history")
            for source in ("abit", "trace", "combined")
            for ratio in (1 / 8, 1 / 32)
        ]
        serial = evaluate_grid(recording, cells, jobs=1)
        parallel = evaluate_grid(recording, cells, jobs=3)
        assert [r.mean_hitrate for r in serial] == [
            r.mean_hitrate for r in parallel
        ]
        assert [r.total_migrations for r in serial] == [
            r.total_migrations for r in parallel
        ]

    def test_evaluate_from_cache_path(self, recording, tmp_path):
        from repro.tiering import save_recorded

        path = save_recorded(recording, tmp_path / "run.npz")
        cells = [GridCell("oracle", "combined", 1 / 8)]
        direct = evaluate_grid(recording, cells, jobs=1)
        via_path = evaluate_grid(str(path), cells, jobs=2)
        assert direct[0].mean_hitrate == via_path[0].mean_hitrate


class TestSweepDeterminism:
    def test_fig6_jobs1_vs_jobs4_bit_identical(self, tmp_path):
        """Acceptance: the parallel sweep is indistinguishable from serial."""
        kw = dict(
            epochs=2,
            workload_kw=dict(SMALL_KW),
            ratios=(1 / 8, 1 / 32),
        )
        names = ["web-serving", "graph500"]
        serial = fig6_sweep(names, jobs=1, **kw)
        parallel = fig6_sweep(names, jobs=4, cache_dir=tmp_path, **kw)
        assert serial == parallel  # HitratePoint dataclass eq: exact floats
        # And again from the warm cache.
        warm = fig6_sweep(names, jobs=4, cache_dir=tmp_path, **kw)
        assert serial == warm

    def test_sweep_recorded_jobs_identical(self):
        rec = _specs(names=("graph500",))[0].record()
        assert sweep_recorded(rec, ratios=(1 / 8,), jobs=1) == sweep_recorded(
            rec, ratios=(1 / 8,), jobs=2
        )


class TestHotMaskMemo:
    def test_memo_shared_across_cells(self):
        rec = _specs(names=("web-serving",))[0].record()
        assert rec._hot_mask_cache == {}
        sweep_recorded(rec, ratios=(1 / 8, 1 / 32), jobs=1)
        # One entry per (epoch, capacity), not per policy x source cell.
        assert len(rec._hot_mask_cache) == rec.n_epochs * 2

    def test_memo_does_not_change_results(self):
        spec = _specs(names=("web-serving",))[0]
        fresh_each_time = [
            sweep_recorded(spec.record(), ratios=(1 / 16,), jobs=1)
            for _ in range(2)
        ]
        assert fresh_each_time[0] == fresh_each_time[1]
