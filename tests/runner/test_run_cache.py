"""Tests for the content-addressed recorded-run cache."""

import numpy as np
import pytest

from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.runner import RecordSpec, RunCache, cache_key, get_or_record
from repro.tiering import evaluate_recorded
from repro.tiering.policies import HistoryPolicy


def _spec(**overrides):
    defaults = dict(
        workload="web-serving",
        workload_kw={"accesses_per_epoch": 20_000},
        machine_config=MachineConfig.scaled(ibs_period=16),
        tmp_config=TMPConfig(),
        epochs=2,
        seed=0,
    )
    defaults.update(overrides)
    return RecordSpec(**defaults)


class TestCacheKey:
    def test_stable_across_instances(self):
        assert cache_key(_spec()) == cache_key(_spec())

    def test_none_configs_hash_as_defaults(self):
        # record_run substitutes MachineConfig.scaled() / TMPConfig()
        # for None, so the key must too.
        explicit = RecordSpec(
            "gups",
            machine_config=MachineConfig.scaled(),
            tmp_config=TMPConfig(),
        )
        assert cache_key(RecordSpec("gups")) == cache_key(explicit)

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"epochs": 3},
            {"workload": "gups"},
            {"workload_kw": {"accesses_per_epoch": 30_000}},
            {"machine_config": MachineConfig.scaled(ibs_period=64)},
            {"tmp_config": TMPConfig(abit_weight=2.0)},
            {"init": False},
            {"epoch_slices": 2},
        ],
    )
    def test_any_config_change_misses(self, change):
        assert cache_key(_spec()) != cache_key(_spec(**change))

    def test_format_version_participates(self, monkeypatch):
        from repro.tiering import serialize

        base = cache_key(_spec())
        monkeypatch.setattr(serialize, "_FORMAT_VERSION", serialize._FORMAT_VERSION + 1)
        assert cache_key(_spec()) != base

    def test_uncanonicalizable_value_raises(self):
        # Regression: the old repr() fallback embedded the object's
        # memory address, so the key silently differed per process and
        # such specs could never hit.  Now it fails loudly at key time.
        spec = _spec(workload_kw={"callback": object()})
        with pytest.raises(TypeError, match="stable cache key"):
            cache_key(spec)

    def test_numpy_values_canonicalize(self):
        a = _spec(workload_kw={"n": np.int64(512), "w": np.array([1, 2])})
        b = _spec(workload_kw={"n": 512, "w": [1, 2]})
        assert cache_key(a) == cache_key(b)

    def test_key_equal_across_processes(self):
        # Equal specs must hash equally in different interpreters (and
        # under different hash seeds) — the whole point of a shared
        # on-disk cache.
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        program = (
            "import numpy as np\n"
            "from repro.runner import RecordSpec, cache_key\n"
            "spec = RecordSpec('gups', workload_kw={"
            "'footprint_pages': np.int64(512), "
            "'nested': {'b': [1, 2.5], 'a': 'x'}}, epochs=3, seed=2)\n"
            "print(cache_key(spec))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        env["PYTHONHASHSEED"] = "random"
        keys = {
            subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            for _ in range(2)
        }
        local = cache_key(
            RecordSpec(
                "gups",
                workload_kw={
                    "footprint_pages": np.int64(512),
                    "nested": {"b": [1, 2.5], "a": "x"},
                },
                epochs=3,
                seed=2,
            )
        )
        assert keys == {local}


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        key = cache_key(spec)
        assert cache.get(key) is None
        run = spec.record()
        cache.put(key, run)
        assert key in cache
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.workload == run.workload
        assert cache.stats()["hits"] == 1

    def test_hit_preserves_evaluation(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        run = spec.record()
        cache.put(cache_key(spec), run)
        loaded = cache.get(cache_key(spec))
        a = evaluate_recorded(run, HistoryPolicy(), tier1_ratio=1 / 16)
        b = evaluate_recorded(loaded, HistoryPolicy(), tier1_ratio=1 / 16)
        assert a.mean_hitrate == b.mean_hitrate

    def test_changed_config_misses_on_disk(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.put(cache_key(spec), spec.record())
        assert cache.get(cache_key(_spec(seed=1))) is None

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        key = cache_key(spec)
        cache.path_for(key).write_bytes(b"not a numpy archive")
        # Corruption is a miss, and the torn entry is removed.
        assert cache.get(key) is None
        assert cache.stats()["errors"] == 1
        assert not cache.path_for(key).exists()
        # get_or_record then repopulates the slot instead of crashing.
        run = get_or_record(spec, cache=cache)
        assert run.n_epochs == spec.epochs
        assert cache.path_for(key).exists()

    def test_truncated_entry_recovers(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        key = cache_key(spec)
        cache.put(key, spec.record())
        payload = cache.path_for(key).read_bytes()
        cache.path_for(key).write_bytes(payload[: len(payload) // 2])
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_put_is_atomic_no_temp_residue(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.put(cache_key(spec), spec.record())
        assert [p.name for p in tmp_path.glob(".*tmp*")] == []

    def test_lookups_recorded_in_metrics(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
        try:
            cache = RunCache(tmp_path)
            spec = _spec()
            key = cache_key(spec)
            assert cache.get(key) is None
            cache.put(key, spec.record())
            assert cache.get(key) is not None
            cache.path_for(key).write_bytes(b"garbage")
            assert cache.get(key) is None
            lookups = obs_metrics.default_registry().counter(
                "repro_cache_lookups_total", labelnames=("outcome",)
            )
            assert lookups.value(outcome="miss") == 1
            assert lookups.value(outcome="hit") == 1
            assert lookups.value(outcome="error") == 1
        finally:
            obs_metrics.set_default_registry(previous)
