"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 7790
        assert args.socket is None
        assert args.max_sessions == 16
        assert args.idle_ttl == 600.0
        assert args.workers is None  # resolved at server start

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/repro.sock", "--max-sessions", "4",
             "--idle-ttl", "30", "--step-workers", "2", "--workers", "4"]
        )
        assert args.socket == "/tmp/repro.sock"
        assert args.max_sessions == 4
        assert args.idle_ttl == 30.0
        assert args.step_workers == 2
        assert args.workers == 4

    def test_serve_workers_zero_and_negative(self):
        assert build_parser().parse_args(["serve", "--workers", "0"]).workers == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "-1"])

    def test_serve_ledger_defaults_and_options(self):
        args = build_parser().parse_args(["serve"])
        assert args.ledger_dir is None
        assert args.ledger_fsync == "rotate"
        assert args.ledger_retention_bytes is None
        args = build_parser().parse_args(
            [
                "serve",
                "--ledger-dir", "/tmp/led",
                "--ledger-fsync", "always",
                "--ledger-retention-bytes", "1048576",
            ]
        )
        assert args.ledger_dir == "/tmp/led"
        assert args.ledger_fsync == "always"
        assert args.ledger_retention_bytes == 1048576
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--ledger-fsync", "maybe"])

    def test_ledger_subcommands(self):
        args = build_parser().parse_args(["ledger", "list", "/tmp/led"])
        assert args.command == "ledger"
        assert args.ledger_command == "list"
        args = build_parser().parse_args(
            ["ledger", "cat", "/tmp/led", "s1", "--from-seq", "3", "--to-seq", "9"]
        )
        assert (args.session, args.from_seq, args.to_seq) == ("s1", 3, 9)
        args = build_parser().parse_args(["ledger", "replay", "/tmp/led", "s1"])
        assert args.ledger_command == "replay"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ledger"])  # subcommand required

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "gups"])
        assert args.command == "profile"
        assert args.workload == "gups"
        assert args.epochs == 8
        assert args.ibs_period == 16

    def test_tier_options(self):
        args = build_parser().parse_args(
            ["tier", "lulesh", "--policy", "oracle", "--ratio", "0.25", "--baseline"]
        )
        assert args.policy == "oracle"
        assert args.ratio == 0.25
        assert args.baseline


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out
        assert "oracle" in out

    def test_profile_small(self, capsys):
        rc = main(["profile", "web-serving", "--epochs", "2", "--numa-maps"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch 0:" in out
        assert "statistics:" in out
        assert "# pid" in out

    def test_profile_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["profile", "doom"])

    def test_profile_lwp_source(self, capsys):
        rc = main(
            ["profile", "web-serving", "--epochs", "1", "--trace-source", "pebs"]
        )
        assert rc == 0
        assert "trace=" in capsys.readouterr().out

    def test_tier_with_baseline(self, capsys):
        rc = main(
            [
                "tier",
                "web-serving",
                "--epochs",
                "2",
                "--ratio",
                "0.125",
                "--baseline",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean hitrate" in out
        assert "speedup" in out

    def test_tier_unknown_policy(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["tier", "gups", "--policy", "vibes"])

    def test_heatmap(self, capsys):
        rc = main(["heatmap", "web-serving", "--epochs", "2", "--bins", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 3 view" in out
        assert "Fig. 4 view" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "web-serving", "--epochs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle/combined" in out
        assert "history/abit" in out

    def test_record_then_evaluate(self, capsys, tmp_path):
        target = str(tmp_path / "run.npz")
        assert main(["record", "web-serving", "--epochs", "2", target]) == 0
        assert "recorded web-serving" in capsys.readouterr().out
        assert (
            main(["evaluate", target, "--policy", "history", "--ratio", "0.125"]) == 0
        )
        out = capsys.readouterr().out
        assert "hitrate=" in out

    def test_ledger_list_and_cat(self, capsys, tmp_path):
        from repro.ledger import Ledger

        ledger = Ledger(tmp_path)
        session = ledger.create_session(
            "s1", {"workload": "gups", "epochs": 2}, info={"tier1_capacity": 64}
        )
        session.append("epoch", {"epoch": 0, "hitrate": 0.5})
        session.append("epoch", {"epoch": 1, "hitrate": 0.6})
        session.close()

        assert main(["ledger", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "s1: workload=gups" in out
        assert "seq=[0, 2)" in out

        assert main(["ledger", "cat", str(tmp_path), "s1", "--from-seq", "1"]) == 0
        import json

        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["seq"] == 1
        assert record["data"]["hitrate"] == 0.6

    def test_ledger_cat_missing_session(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["ledger", "cat", str(tmp_path), "nope"])

    def test_evaluate_unknown_policy(self, tmp_path):
        target = str(tmp_path / "run.npz")
        main(["record", "web-serving", "--epochs", "1", target])
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["evaluate", target, "--policy", "psychic"])
