"""Integration tests for the TMP orchestrator."""

import numpy as np
import pytest

from repro.core import RankSource, TMPConfig, TMProfiler
from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.workloads import make_workload


def _machine(**kw):
    defaults = dict(
        total_frames=1 << 16,
        tlb_entries=64,
        l1_bytes=4096,
        l2_bytes=8192,
        llc_bytes=32768,
        ibs_period=10,
        ops_per_second=1e4,
        n_cpus=2,
    )
    defaults.update(kw)
    return Machine(MachineConfig(**defaults))


def _run_epoch(m, prof, vma, n=1000, seed=0, pid=1):
    rng = np.random.default_rng(seed)
    b = AccessBatch.from_pages(rng.choice(vma.vpns, n), pid=pid)
    r = m.run_batch(b)
    prof.observe_batch(b, r)
    return prof.end_epoch()


class TestEpochFlow:
    def test_report_contents(self):
        m = _machine()
        vma = m.mmap(1, 64)
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        rep = _run_epoch(m, prof, vma)
        assert rep.epoch == 0
        assert rep.abit_pages_found == 64
        assert rep.trace_samples == 100
        assert rep.tracked_pids == [1]
        assert rep.app_time_s == pytest.approx(0.1)

    def test_rank_combines_sources(self):
        m = _machine()
        vma = m.mmap(1, 64)
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        rep = _run_epoch(m, prof, vma)
        combined = rep.rank()
        np.testing.assert_allclose(
            combined,
            rep.rank(RankSource.ABIT) + rep.rank(RankSource.TRACE),
            rtol=1e-6,
        )
        assert combined.sum() > 0

    def test_epoch_counter_increments(self):
        m = _machine()
        vma = m.mmap(1, 64)
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        reports = [_run_epoch(m, prof, vma, seed=i) for i in range(3)]
        assert [r.epoch for r in reports] == [0, 1, 2]
        assert len(prof.reports) == 3

    def test_scan_interval_respected(self):
        m = _machine()  # 1000 ops / 1e4 ops/s = 0.1 s per epoch
        vma = m.mmap(1, 64)
        prof = TMProfiler(m, TMPConfig(abit_scan_interval_s=0.35))
        prof.register_pids([1])
        scans = []
        for i in range(8):
            _run_epoch(m, prof, vma, seed=i)
            scans.append(prof.abit.stats.scans)
        # Scans only every 4th epoch (0.4 s >= 0.35 s).
        assert scans == [1, 1, 1, 1, 2, 2, 2, 2]


class TestGatingIntegration:
    def test_gating_disables_drivers_in_quiet_phase(self):
        m = _machine()
        vma = m.mmap(1, 4096)
        prof = TMProfiler(m, TMPConfig(hwpc_gating=True))
        prof.register_pids([1])
        # Busy epoch establishes the maxima.
        _run_epoch(m, prof, vma, n=5000, seed=0)
        # Nearly idle epoch: activity < 20% of max.
        rep = _run_epoch(m, prof, vma, n=50, seed=1)
        assert rep.gating is not None
        # The *next* epoch runs with drivers gated off.
        assert not prof.abit.enabled or not prof.trace.enabled

    def test_no_gating_keeps_drivers_armed(self):
        m = _machine()
        vma = m.mmap(1, 4096)
        prof = TMProfiler(m, TMPConfig(hwpc_gating=False))
        prof.register_pids([1])
        _run_epoch(m, prof, vma, n=5000, seed=0)
        rep = _run_epoch(m, prof, vma, n=50, seed=1)
        assert rep.gating is None
        assert prof.abit.enabled and prof.trace.enabled


class TestProcessFilterIntegration:
    def test_small_processes_untracked(self):
        m = _machine(n_cpus=1)
        big = m.mmap(1, 4096)
        small = m.mmap(2, 8)  # <10% memory
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1, 2])
        rng = np.random.default_rng(0)
        b = AccessBatch.concat(
            [
                AccessBatch.from_pages(rng.choice(big.vpns, 5000), pid=1),
                AccessBatch.from_pages(rng.choice(small.vpns, 20), pid=2),
            ]
        )
        r = m.run_batch(b)
        prof.observe_batch(b, r)
        rep = prof.end_epoch()
        assert rep.tracked_pids == [1]

    def test_filter_disabled_tracks_registered(self):
        m = _machine()
        m.mmap(1, 64)
        m.mmap(2, 8)
        prof = TMProfiler(m, TMPConfig(process_filter=False))
        prof.register_pids([1, 2])
        rep = prof.end_epoch()
        assert rep.tracked_pids == [1, 2]

    def test_tick_respects_empty_filter(self):
        # Regression: tick() used to fall back to scanning *all*
        # registered PIDs whenever filter.tracked was empty, diverging
        # from end_epoch's strict filter semantics — a filter that
        # excludes every process must leave the A-bit walker idle.
        m = _machine(n_cpus=1)
        vma = m.mmap(1, 64)
        # Thresholds no process can ever meet: tracked set stays empty.
        prof = TMProfiler(m, TMPConfig(min_cpu_share=2.0, min_mem_share=2.0))
        prof.register_pids([1])
        rep0 = _run_epoch(m, prof, vma)  # first epoch evaluates the filter
        assert prof.filter.tracked == []
        assert rep0.tracked_pids == []
        rng = np.random.default_rng(1)
        b = AccessBatch.from_pages(rng.choice(vma.vpns, 1000), pid=1)
        prof.observe_batch(b, m.run_batch(b))
        assert prof.tick()  # the scan pass runs...
        rep = prof.end_epoch()
        # ...but covers no process — exactly like end_epoch's own scan.
        assert rep.abit_pages_found == 0
        assert rep.profile.abit.sum() == 0

    def test_tick_filter_disabled_scans_registered(self):
        m = _machine(n_cpus=1)
        vma = m.mmap(1, 64)
        prof = TMProfiler(m, TMPConfig(process_filter=False))
        prof.register_pids([1])
        rng = np.random.default_rng(0)
        b = AccessBatch.from_pages(rng.choice(vma.vpns, 1000), pid=1)
        prof.observe_batch(b, m.run_batch(b))
        assert prof.tick()
        rep = prof.end_epoch()
        assert rep.profile.abit.sum() > 0


class TestOverhead:
    def test_per_epoch_deltas_sum_to_total(self):
        m = _machine()
        vma = m.mmap(1, 256)
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        reports = [_run_epoch(m, prof, vma, seed=i) for i in range(3)]
        total = sum(r.overhead.total_s for r in reports)
        assert total == pytest.approx(prof.total_overhead().total_s)

    def test_overhead_fraction_small(self):
        m = _machine()
        vma = m.mmap(1, 256)
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        for i in range(3):
            _run_epoch(m, prof, vma, seed=i)
        assert 0 < prof.overhead_fraction() < 0.2


class TestWithRealWorkload:
    def test_full_pipeline(self):
        m = Machine(MachineConfig.scaled())
        w = make_workload("data-caching")
        w.attach(m)
        prof = TMProfiler(m, TMPConfig())
        prof.register_workload(w)
        rng = np.random.default_rng(0)
        for e in range(3):
            b = w.epoch(e, rng)
            r = m.run_batch(b)
            prof.observe_batch(b, r)
            rep = prof.end_epoch()
        assert prof.store.detected_pages("either") > 100
        assert rep.rank().sum() > 0
        # Clients fall below the resource filter; servers are tracked.
        assert len(rep.tracked_pids) < w.n_processes
