"""Unit tests for the page-stats store (extended page descriptors)."""

import numpy as np
import pytest

from repro.core import PageStatsStore


class TestRecording:
    def test_abit_counts(self):
        s = PageStatsStore()
        s.resize(4)
        s.record_abit(np.array([0, 2, 2]))
        np.testing.assert_array_equal(s.abit_total, [1, 0, 2, 0])
        np.testing.assert_array_equal(s.abit_epoch, [1, 0, 2, 0])

    def test_trace_counts(self):
        s = PageStatsStore()
        s.resize(3)
        s.record_trace(np.array([1, 1, 1]))
        assert s.trace_total[1] == 3

    def test_trace_weights(self):
        s = PageStatsStore()
        s.resize(2)
        s.record_trace(np.array([0, 1]), weights=np.array([5.0, 2.0]))
        np.testing.assert_array_equal(s.trace_total, [5, 2])

    def test_auto_resize_on_large_pfn(self):
        s = PageStatsStore()
        s.record_abit(np.array([100]))
        assert len(s) == 101
        assert s.abit_total[100] == 1

    def test_empty_record(self):
        s = PageStatsStore()
        s.resize(2)
        s.record_abit(np.zeros(0, dtype=np.int64))
        assert s.abit_total.sum() == 0


class TestEpochs:
    def test_end_epoch_freezes_and_resets(self):
        s = PageStatsStore()
        s.resize(2)
        s.record_abit(np.array([0]))
        s.record_trace(np.array([1]))
        p = s.end_epoch()
        assert p.epoch == 0
        np.testing.assert_array_equal(p.abit, [1, 0])
        np.testing.assert_array_equal(p.trace, [0, 1])
        # Epoch accumulators reset; totals persist.
        assert s.abit_epoch.sum() == 0
        assert s.abit_total.sum() == 1
        assert s.epoch == 1

    def test_profile_is_a_copy(self):
        s = PageStatsStore()
        s.resize(1)
        s.record_abit(np.array([0]))
        p = s.end_epoch()
        s.record_abit(np.array([0]))
        assert p.abit[0] == 1

    def test_epoch_rank_weights(self):
        s = PageStatsStore()
        s.resize(1)
        s.record_abit(np.array([0]))
        s.record_trace(np.array([0, 0]))
        p = s.end_epoch()
        assert p.rank()[0] == 3
        assert p.rank(abit_weight=2.0, trace_weight=0.5)[0] == 3.0

    def test_detected_mask(self):
        s = PageStatsStore()
        s.resize(3)
        s.record_abit(np.array([0]))
        s.record_trace(np.array([2]))
        p = s.end_epoch()
        np.testing.assert_array_equal(p.detected_mask(), [True, False, True])


class TestDetectedPages:
    def _store(self):
        s = PageStatsStore()
        s.resize(4)
        s.record_abit(np.array([0, 1]))
        s.record_trace(np.array([1, 2]))
        return s

    def test_methods(self):
        s = self._store()
        assert s.detected_pages("abit") == 2
        assert s.detected_pages("trace") == 2
        assert s.detected_pages("both") == 1
        assert s.detected_pages("either") == 3

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            self._store().detected_pages("psychic")

    def test_cumulative_across_epochs(self):
        s = self._store()
        s.end_epoch()
        s.record_abit(np.array([3]))
        assert s.detected_pages("abit") == 3
