"""Unit tests for the trace (IBS/PEBS) driver."""

import numpy as np
import pytest

from repro.core import PageStatsStore, TMPConfig, TraceDriver
from repro.memsim import AccessBatch, Machine, MachineConfig


def _setup(config=None, npages=512, **mach_kw):
    defaults = dict(
        total_frames=1 << 14,
        tlb_entries=64,
        l1_bytes=4096,
        l2_bytes=8192,
        llc_bytes=16384,
        ibs_period=10,
        pebs_period=10,
        enable_pebs=True,
        n_cpus=1,
    )
    defaults.update(mach_kw)
    m = Machine(MachineConfig(**defaults))
    vma = m.mmap(1, npages)
    store = PageStatsStore()
    store.resize(m.n_frames)
    drv = TraceDriver(m, config or TMPConfig(), store)
    return m, vma, store, drv


def _random_batch(vma, n, seed=0):
    rng = np.random.default_rng(seed)
    return AccessBatch.from_pages(rng.choice(vma.vpns, n), pid=1)


class TestDrain:
    def test_aggregates_memory_samples(self):
        m, vma, store, drv = _setup()
        m.run_batch(_random_batch(vma, 1000))
        samples = drv.drain()
        assert samples.n == 100
        # Cold random accesses: nearly all memory-sourced.
        assert store.trace_total.sum() == drv.stats.memory_samples
        assert drv.stats.memory_samples > 50

    def test_memory_only_filter(self):
        m, vma, store, drv = _setup()
        # Hammer one page: after warmup everything hits L1.
        m.run_batch(AccessBatch.from_pages(np.repeat(vma.vpns[:1], 2000), pid=1))
        drv.drain()
        # Only the cold-miss-phase samples count toward hotness.
        assert store.trace_total.sum() < 10

    def test_all_samples_mode(self):
        cfg = TMPConfig(trace_memory_only=False)
        m, vma, store, drv = _setup(config=cfg)
        m.run_batch(AccessBatch.from_pages(np.repeat(vma.vpns[:1], 2000), pid=1))
        drv.drain()
        assert store.trace_total.sum() == 200  # every sample counts

    def test_overhead_accounting(self):
        m, vma, store, drv = _setup()
        m.run_batch(_random_batch(vma, 1000))
        drv.drain()
        c = drv.config.costs
        assert drv.stats.time_s == pytest.approx(100 * c.trace_per_sample_s)
        assert drv.stats.samples_collected == 100

    def test_interrupt_cost(self):
        m, vma, store, drv = _setup()
        m.ibs.buffer_records = 30
        m.run_batch(_random_batch(vma, 1000))  # 100 samples → 3 fills
        drv.drain()
        assert drv.stats.interrupts_serviced == 3


class TestEnableDisable:
    def test_disable_stops_hardware(self):
        m, vma, store, drv = _setup()
        drv.enabled = False
        assert not m.ibs.enabled
        m.run_batch(_random_batch(vma, 1000))
        assert drv.drain().n == 0

    def test_reenable(self):
        m, vma, store, drv = _setup()
        drv.enabled = False
        m.run_batch(_random_batch(vma, 500))
        drv.enabled = True
        m.run_batch(_random_batch(vma, 500))
        assert drv.drain().n == 50


class TestSourceSelection:
    def test_ibs_default(self):
        m, _, _, drv = _setup()
        assert drv.sampler is m.ibs

    def test_pebs(self):
        cfg = TMPConfig(trace_source="pebs")
        m, vma, store, drv = _setup(config=cfg)
        assert drv.sampler is m.pebs
        m.run_batch(_random_batch(vma, 1000))
        samples = drv.drain()
        assert samples.n > 0
        # PEBS armed on LLC misses: every sample is memory-sourced.
        assert samples.memory_samples().n == samples.n

    def test_set_period(self):
        m, vma, store, drv = _setup()
        drv.set_period(5)
        m.run_batch(_random_batch(vma, 1000))
        assert drv.drain().n == 200
