"""Unit tests for TMPConfig validation."""

import pytest

from repro.core import CostModel, TMPConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = TMPConfig()
        assert cfg.abit_enabled and cfg.trace_enabled
        assert cfg.trace_source == "ibs"

    def test_bad_trace_source(self):
        with pytest.raises(ValueError, match="trace_source"):
            TMPConfig(trace_source="pin")

    def test_lwp_source_accepted(self):
        assert TMPConfig(trace_source="lwp").trace_source == "lwp"

    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="gating_threshold"):
            TMPConfig(gating_threshold=1.5)
        with pytest.raises(ValueError, match="gating_threshold"):
            TMPConfig(gating_threshold=-0.1)

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            TMPConfig(abit_scan_budget_pages=0)

    def test_unbounded_budget_ok(self):
        assert TMPConfig(abit_scan_budget_pages=None).abit_scan_budget_pages is None

    def test_pebs_source(self):
        assert TMPConfig(trace_source="pebs").trace_source == "pebs"


class TestCostModel:
    def test_positive_defaults(self):
        c = CostModel()
        for name in (
            "abit_per_pte_s",
            "abit_per_scan_s",
            "shootdown_s",
            "trace_per_sample_s",
            "trace_per_interrupt_s",
            "pmu_read_s",
            "filter_eval_s",
        ):
            assert getattr(c, name) > 0

    def test_independent_instances(self):
        a, b = TMPConfig(), TMPConfig()
        a.costs.abit_per_pte_s = 99.0
        assert b.costs.abit_per_pte_s != 99.0
