"""Unit tests for the resource-usage process filter."""

from repro.core import ProcessFilter, ProcessUsage, TMPConfig


def _u(pid, cpu=0.0, mem=0.0):
    return ProcessUsage(pid=pid, cpu_share=cpu, mem_share=mem)


class TestThresholds:
    def test_cpu_threshold(self):
        f = ProcessFilter(TMPConfig())
        tracked = f.evaluate([_u(1, cpu=0.06), _u(2, cpu=0.04)])
        assert tracked == [1]

    def test_mem_threshold(self):
        f = ProcessFilter(TMPConfig())
        tracked = f.evaluate([_u(1, mem=0.11), _u(2, mem=0.09)])
        assert tracked == [1]

    def test_either_suffices(self):
        f = ProcessFilter(TMPConfig())
        tracked = f.evaluate([_u(1, cpu=0.06, mem=0.0), _u(2, cpu=0.0, mem=0.2)])
        assert tracked == [1, 2]

    def test_exact_threshold_included(self):
        f = ProcessFilter(TMPConfig())
        assert f.evaluate([_u(1, cpu=0.05)]) == [1]
        assert f.evaluate([_u(2, mem=0.10)]) == [2]

    def test_filter_disabled_tracks_all(self):
        f = ProcessFilter(TMPConfig(process_filter=False))
        assert f.evaluate([_u(1), _u(2)]) == [1, 2]

    def test_custom_thresholds(self):
        f = ProcessFilter(TMPConfig(min_cpu_share=0.5, min_mem_share=0.5))
        assert f.evaluate([_u(1, cpu=0.3, mem=0.3)]) == []


class TestRestrictiveMode:
    def test_cap_keeps_heaviest(self):
        f = ProcessFilter(TMPConfig(), max_tracked=2)
        tracked = f.evaluate(
            [_u(1, cpu=0.5), _u(2, cpu=0.9), _u(3, cpu=0.7), _u(4, cpu=0.6)]
        )
        assert tracked == [2, 3]

    def test_cap_not_binding(self):
        f = ProcessFilter(TMPConfig(), max_tracked=10)
        assert f.evaluate([_u(1, cpu=0.5), _u(2, cpu=0.5)]) == [1, 2]


class TestBookkeeping:
    def test_tracked_persists(self):
        f = ProcessFilter(TMPConfig())
        f.evaluate([_u(7, cpu=1.0)])
        assert f.tracked == [7]
        # Returned list is a copy.
        f.tracked.append(99)
        assert f.tracked == [7]

    def test_evaluation_count_and_cost(self):
        cfg = TMPConfig()
        f = ProcessFilter(cfg)
        f.evaluate([_u(1), _u(2), _u(3)])
        assert f.evaluations == 1
        assert f.time_s == 3 * cfg.costs.filter_eval_s

    def test_reevaluation_replaces(self):
        f = ProcessFilter(TMPConfig())
        f.evaluate([_u(1, cpu=1.0)])
        f.evaluate([_u(2, cpu=1.0)])
        assert f.tracked == [2]
