"""Unit tests for the A-bit scan driver, including the stale-TLB
no-shootdown semantics and the bounded-budget scan window."""

import numpy as np
import pytest

from repro.core import ABitDriver, PageStatsStore, TMPConfig
from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.memsim.pte import is_accessed


def _setup(npages=64, config=None, **mach_kw):
    defaults = dict(total_frames=1 << 14, tlb_entries=64, n_cpus=1)
    defaults.update(mach_kw)
    m = Machine(MachineConfig(**defaults))
    vma = m.mmap(1, npages)
    store = PageStatsStore()
    store.resize(m.n_frames)
    drv = ABitDriver(m, config or TMPConfig(), store)
    return m, vma, store, drv


class TestScan:
    def test_detects_accessed_pages(self):
        m, vma, store, drv = _setup()
        m.run_batch(AccessBatch.from_pages(vma.vpns[:5], pid=1))
        found = drv.scan([1])
        assert found == 5
        assert store.detected_pages("abit") == 5
        np.testing.assert_array_equal(np.flatnonzero(store.abit_total > 0), vma.pfns[:5])

    def test_clears_bits(self):
        m, vma, store, drv = _setup()
        m.run_batch(AccessBatch.from_pages(vma.vpns[:5], pid=1))
        drv.scan([1])
        assert not is_accessed(m.page_tables[1].flags).any()
        # Second scan with no new accesses finds nothing.
        assert drv.scan([1]) == 0

    def test_disabled_scans_nothing(self):
        m, vma, store, drv = _setup()
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        drv.enabled = False
        assert drv.scan([1]) == 0
        assert drv.stats.scans == 0

    def test_unknown_pid_skipped(self):
        _, _, _, drv = _setup()
        assert drv.scan([999]) == 0

    def test_overhead_accounting(self):
        m, vma, store, drv = _setup(npages=100)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        drv.scan([1])
        c = drv.config.costs
        expected = c.abit_per_scan_s + 100 * c.abit_per_pte_s
        assert drv.stats.time_s == pytest.approx(expected)
        assert drv.stats.ptes_visited == 100


class TestStaleTLBSemantics:
    def test_no_shootdown_misses_tlb_resident_rescan(self):
        """The paper's §III-B.4 trade-off: after a clear without
        shootdown, a TLB-resident page is accessed without re-setting
        its A bit — the scan loses those accesses."""
        m, vma, store, drv = _setup()
        page = vma.vpns[:1]
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        assert drv.scan([1]) == 1
        # Access again: the translation is still TLB-resident, so no
        # walk happens and the A bit stays clear.
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        assert drv.scan([1]) == 0  # the access was invisible

    def test_shootdown_mode_recovers_visibility(self):
        cfg = TMPConfig(abit_shootdown=True)
        m, vma, store, drv = _setup(config=cfg)
        page = vma.vpns[:1]
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        assert drv.scan([1]) == 1
        assert drv.stats.shootdowns == 1
        # The shootdown flushed the entry: the next access walks again.
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        assert drv.scan([1]) == 1

    def test_eviction_restores_visibility_without_shootdown(self):
        m, vma, store, drv = _setup(npages=256, tlb_entries=4)
        page = vma.vpns[:1]
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        drv.scan([1])
        # Thrash the tiny TLB so the entry is evicted, then re-access.
        m.run_batch(AccessBatch.from_pages(vma.vpns[100:200], pid=1))
        drv.scan([1])  # clear the thrash pages' bits too
        m.run_batch(AccessBatch.from_pages(page, pid=1))
        assert store.abit_total[vma.pfn_base] >= 1
        found = drv.scan([1])
        assert found >= 1


class TestBudget:
    def test_head_restart_window(self):
        cfg = TMPConfig(abit_scan_budget_pages=8, abit_scan_resumable=False)
        m, vma, store, drv = _setup(npages=64, config=cfg)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        drv.scan([1])
        drv.scan([1])
        # Only the first 8 slots are ever visited.
        assert store.detected_pages("abit") == 8
        assert drv.stats.ptes_visited == 16

    def test_resumable_cursor_covers_table(self):
        cfg = TMPConfig(abit_scan_budget_pages=8, abit_scan_resumable=True)
        m, vma, store, drv = _setup(npages=64, config=cfg, tlb_entries=4)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        for _ in range(8):
            drv.scan([1])
        # 8 passes x 8 PTEs = the whole 64-page table.
        assert store.detected_pages("abit") == 64

    def test_budget_larger_than_table(self):
        cfg = TMPConfig(abit_scan_budget_pages=1000)
        m, vma, store, drv = _setup(npages=16, config=cfg)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        drv.scan([1])
        assert drv.stats.ptes_visited == 16

    def test_unbounded_budget(self):
        cfg = TMPConfig(abit_scan_budget_pages=None)
        m, vma, store, drv = _setup(npages=64, config=cfg)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        drv.scan([1])
        assert store.detected_pages("abit") == 64

    def test_reset_cursors(self):
        cfg = TMPConfig(abit_scan_budget_pages=8, abit_scan_resumable=True)
        m, vma, store, drv = _setup(npages=64, config=cfg)
        drv.scan([1])
        drv.reset_cursors()
        m.run_batch(AccessBatch.from_pages(vma.vpns[:8], pid=1))
        assert drv.scan([1]) == 8  # back at the head


class TestMultiProcess:
    def test_scans_each_tracked_pid(self):
        m = Machine(MachineConfig(total_frames=1 << 14, n_cpus=1))
        v1 = m.mmap(1, 8)
        v2 = m.mmap(2, 8)
        store = PageStatsStore()
        store.resize(m.n_frames)
        drv = ABitDriver(m, TMPConfig(), store)
        m.run_batch(
            AccessBatch.concat(
                [
                    AccessBatch.from_pages(v1.vpns, pid=1),
                    AccessBatch.from_pages(v2.vpns, pid=2),
                ]
            )
        )
        assert drv.scan([1, 2]) == 16
        assert drv.stats.processes_scanned == 2

    def test_untracked_pid_not_scanned(self):
        m = Machine(MachineConfig(total_frames=1 << 14, n_cpus=1))
        v1 = m.mmap(1, 8)
        v2 = m.mmap(2, 8)
        store = PageStatsStore()
        store.resize(m.n_frames)
        drv = ABitDriver(m, TMPConfig(), store)
        m.run_batch(
            AccessBatch.concat(
                [
                    AccessBatch.from_pages(v1.vpns, pid=1),
                    AccessBatch.from_pages(v2.vpns, pid=2),
                ]
            )
        )
        assert drv.scan([1]) == 8
        assert store.abit_total[v2.pfn_base : v2.pfn_base + 8].sum() == 0
