"""Unit and property tests for hotness ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RankSource, hotness_rank, top_k_pages
from repro.core.page_stats import EpochProfile


def _profile(abit, trace):
    return EpochProfile(
        epoch=0,
        abit=np.asarray(abit, dtype=np.int64),
        trace=np.asarray(trace, dtype=np.int64),
    )


class TestRankSources:
    def test_combined_sum(self):
        p = _profile([1, 0, 2], [0, 3, 1])
        np.testing.assert_allclose(hotness_rank(p), [1, 3, 3], atol=1e-6)

    def test_combined_tie_break_prefers_trace(self):
        # Equal nominal rank: the trace-supported page must win top-1.
        p = _profile([1, 0], [0, 1])
        rank = hotness_rank(p)
        assert rank[1] > rank[0]

    def test_abit_only(self):
        p = _profile([1, 0, 2], [0, 3, 1])
        np.testing.assert_array_equal(hotness_rank(p, RankSource.ABIT), [1, 0, 2])

    def test_trace_only(self):
        p = _profile([1, 0, 2], [0, 3, 1])
        np.testing.assert_array_equal(hotness_rank(p, "trace"), [0, 3, 1])

    def test_weights(self):
        p = _profile([2], [4])
        assert hotness_rank(p, abit_weight=3.0, trace_weight=0.5)[0] == pytest.approx(8.0)

    def test_string_source_accepted(self):
        p = _profile([1], [1])
        assert hotness_rank(p, "combined")[0] == pytest.approx(2)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            hotness_rank(_profile([1], [1]), "vibes")


class TestTopK:
    def test_picks_hottest(self):
        rank = np.array([5.0, 1.0, 9.0, 0.0])
        np.testing.assert_array_equal(top_k_pages(rank, 2), [2, 0])

    def test_excludes_zero_rank(self):
        rank = np.array([0.0, 0.0, 1.0])
        np.testing.assert_array_equal(top_k_pages(rank, 3), [2])

    def test_k_zero_or_negative(self):
        assert top_k_pages(np.array([1.0]), 0).size == 0
        assert top_k_pages(np.array([1.0]), -5).size == 0

    def test_deterministic_tie_break_low_pfn_first(self):
        rank = np.array([3.0, 3.0, 3.0, 3.0])
        np.testing.assert_array_equal(top_k_pages(rank, 2), [0, 1])

    def test_eligibility_mask(self):
        rank = np.array([5.0, 9.0, 7.0])
        eligible = np.array([True, False, True])
        np.testing.assert_array_equal(top_k_pages(rank, 2, eligible), [2, 0])

    def test_all_zero(self):
        assert top_k_pages(np.zeros(5), 3).size == 0

    @given(
        ranks=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=64),
        k=st.integers(0, 80),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_topk_invariants(self, ranks, k):
        rank = np.array(ranks)
        top = top_k_pages(rank, k)
        # No more than k, all distinct, all positive-rank.
        assert top.size <= k
        assert np.unique(top).size == top.size
        if top.size:
            assert (rank[top] > 0).all()
            # Every excluded positive page ranks <= the minimum included.
            included = set(top.tolist())
            min_in = rank[top].min()
            excluded = [i for i in np.flatnonzero(rank > 0) if i not in included]
            if top.size == k and excluded:
                assert rank[excluded].max() <= min_in
        # Sorted descending by rank.
        if top.size > 1:
            assert (np.diff(rank[top]) <= 1e-12).all()
