"""Unit tests for HWPC-based gating (the 20%-of-max rule)."""

import pytest

from repro.core import HWPCMonitor, TMPConfig
from repro.memsim import Machine, MachineConfig


def _setup(threshold=0.2):
    m = Machine(MachineConfig(total_frames=1 << 12, n_cpus=1))
    cfg = TMPConfig(gating_threshold=threshold, hwpc_gating=True)
    return m, HWPCMonitor(m, cfg)


def _feed(m, llc_miss, dtlb_miss):
    m.pmu.update({"llc_miss": llc_miss, "dtlb_miss": dtlb_miss})


class TestGating:
    def test_first_interval_active(self):
        m, mon = _setup()
        _feed(m, 100, 100)
        d = mon.observe_interval()
        assert d.trace_active and d.abit_active

    def test_quiet_phase_disables(self):
        m, mon = _setup()
        _feed(m, 1000, 1000)
        mon.observe_interval()
        _feed(m, 10, 10)  # 1% of max < 20%
        d = mon.observe_interval()
        assert not d.trace_active
        assert not d.abit_active

    def test_reactivation_on_burst(self):
        m, mon = _setup()
        _feed(m, 1000, 1000)
        mon.observe_interval()
        _feed(m, 10, 10)
        mon.observe_interval()
        _feed(m, 500, 500)  # 50% of max
        d = mon.observe_interval()
        assert d.trace_active and d.abit_active

    def test_independent_gates(self):
        m, mon = _setup()
        _feed(m, 1000, 1000)
        mon.observe_interval()
        _feed(m, 900, 10)  # LLC still busy, TLB quiet
        d = mon.observe_interval()
        assert d.trace_active
        assert not d.abit_active

    def test_threshold_boundary(self):
        m, mon = _setup(threshold=0.2)
        _feed(m, 1000, 1000)
        mon.observe_interval()
        _feed(m, 200, 201)  # exactly 20% is NOT above threshold
        d = mon.observe_interval()
        assert not d.trace_active
        assert d.abit_active

    def test_zero_activity_never_seen_stays_armed(self):
        m, mon = _setup()
        _feed(m, 0, 0)
        d = mon.observe_interval()
        assert d.trace_active and d.abit_active  # no max yet: stay armed


class TestBookkeeping:
    def test_rates_reported(self):
        m, mon = _setup()
        _feed(m, 123, 45)
        d = mon.observe_interval()
        assert d.llc_miss_rate == 123
        assert d.dtlb_miss_rate == 45

    def test_maxima_tracked(self):
        m, mon = _setup()
        _feed(m, 100, 5)
        mon.observe_interval()
        _feed(m, 50, 80)
        mon.observe_interval()
        maxima = mon.maxima()
        assert maxima["llc_miss"] == 100
        assert maxima["dtlb_miss"] == 80

    def test_decision_history(self):
        m, mon = _setup()
        for _ in range(3):
            _feed(m, 10, 10)
            mon.observe_interval()
        assert len(mon.decisions) == 3

    def test_pmu_read_cost(self):
        m, mon = _setup()
        _feed(m, 1, 1)
        mon.observe_interval()
        assert mon.time_s == pytest.approx(2 * mon.config.costs.pmu_read_s)

    def test_pmu_reset_between_intervals(self):
        m, mon = _setup()
        _feed(m, 100, 100)
        mon.observe_interval()
        # No events this interval: counters were reset.
        d = mon.observe_interval()
        assert d.llc_miss_rate == 0
