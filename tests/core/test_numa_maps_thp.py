"""numa_maps rendering over huge-page VMAs."""

import numpy as np

from repro.core import PageStatsStore, format_numa_maps
from repro.memsim import AccessBatch, Machine, MachineConfig


class TestNumaMapsTHP:
    def test_huge_vma_renders_unit_counts(self):
        m = Machine(MachineConfig(total_frames=1 << 14, n_cpus=1))
        vma = m.mmap(1, 1024, name="heap", page_order=9)  # 2 huge units
        m.run_batch(
            AccessBatch.from_pages(vma.vpns[:600], pid=1, is_store=True)
        )
        store = PageStatsStore()
        store.resize(m.n_frames)
        text = format_numa_maps(m, store, 1)
        # anon reports frames; accessed/dirty report PTE units.
        assert "anon=1024" in text
        assert "accessed=2" in text
        assert "dirty=2" in text

    def test_mixed_vmas_one_line_each(self):
        m = Machine(MachineConfig(total_frames=1 << 14, n_cpus=1))
        m.mmap(1, 1024, name="heap", page_order=9)
        m.mmap(1, 8, name="stack")
        store = PageStatsStore()
        store.resize(m.n_frames)
        lines = format_numa_maps(m, store, 1).splitlines()
        assert len(lines) == 2
        assert any("heap" in l for l in lines)
        assert any("stack" in l for l in lines)
