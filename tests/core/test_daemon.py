"""Unit tests for the user-space daemon and numa_maps export."""

import numpy as np
import pytest

from repro.core import TMPConfig, TMPDaemon, TMProfiler, format_numa_maps
from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.workloads import make_workload


def _setup():
    m = Machine(
        MachineConfig(
            total_frames=1 << 14,
            tlb_entries=64,
            ibs_period=10,
            n_cpus=1,
            ops_per_second=100.0,
        )
    )
    prof = TMProfiler(m, TMPConfig())
    return m, prof, TMPDaemon(prof)


class TestRegistration:
    def test_add_program(self):
        m, prof, d = _setup()
        entry = d.add_program("svc", [1, 2])
        assert entry.pids == [1, 2]
        assert prof.registered_pids == [1, 2]

    def test_add_program_merges_pids(self):
        m, prof, d = _setup()
        d.add_program("svc", [1])
        d.add_program("svc", [1, 2])
        assert d.programs["svc"].pids == [1, 2]

    def test_add_workload(self):
        m, prof, d = _setup()
        w = make_workload("gups", footprint_pages=512, accesses_per_epoch=1000)
        w.attach(m)
        entry = d.add_workload(w)
        assert entry.name == "gups"
        assert prof.registered_pids == w.pids

    def test_remove_program(self):
        m, prof, d = _setup()
        d.add_program("svc", [1])
        d.remove_program("svc")
        assert "svc" not in d.programs
        d.remove_program("ghost")  # idempotent

    def test_remove_program_unregisters_pids(self):
        m, prof, d = _setup()
        d.add_program("svc", [1, 2])
        d.remove_program("svc")
        assert prof.registered_pids == []

    def test_remove_program_stops_profiling_and_overhead(self):
        m, prof, d = _setup()
        vma = m.mmap(1, 32)
        d.add_program("svc", [1])
        b = AccessBatch.from_pages(vma.vpns, pid=1)
        prof.observe_batch(b, m.run_batch(b))
        d.poll_epoch()
        assert prof.filter.tracked == [1]
        scans_before = prof.abit.stats.scans

        d.remove_program("svc")
        # The filter forgets the PID immediately, not at the next
        # evaluation interval.
        assert prof.filter.tracked == []
        b = AccessBatch.from_pages(vma.vpns, pid=1)
        prof.observe_batch(b, m.run_batch(b))
        rep = d.poll_epoch()
        # With no tracked or registered PIDs the A-bit walk covers no
        # process: the removed program is no longer profiled.
        assert rep.abit_pages_found == 0
        assert rep.tracked_pids == []
        assert prof.abit.stats.scans == scans_before + 1

    def test_remove_program_keeps_shared_pids(self):
        m, prof, d = _setup()
        d.add_program("a", [1, 2])
        d.add_program("b", [2, 3])
        d.remove_program("a")
        # PID 2 is still owned by program b and must stay registered.
        assert prof.registered_pids == [2, 3]


class TestPollingAndConfig:
    def test_poll_epoch(self):
        m, prof, d = _setup()
        vma = m.mmap(1, 32)
        d.add_program("p", [1])
        b = AccessBatch.from_pages(vma.vpns, pid=1)
        prof.observe_batch(b, m.run_batch(b))
        rep = d.poll_epoch()
        assert rep.abit_pages_found == 32

    def test_reconfigure(self):
        m, prof, d = _setup()
        d.reconfigure(min_cpu_share=0.2)
        assert prof.config.min_cpu_share == 0.2

    def test_reconfigure_unknown_key(self):
        _, _, d = _setup()
        with pytest.raises(AttributeError):
            d.reconfigure(bogus=1)

    def test_reconfigure_unknown_key_is_atomic(self):
        _, prof, d = _setup()
        before = prof.config.min_cpu_share
        with pytest.raises(AttributeError):
            d.reconfigure(min_cpu_share=0.42, bogus=1)
        # Nothing is applied when any key is rejected.
        assert prof.config.min_cpu_share == before

    def test_reconfigure_routes_trace_sample_period(self):
        m, prof, d = _setup()
        d.reconfigure(trace_sample_period=5)
        # The change reaches the live sampler, not just the config.
        assert m.ibs.period == 5

    def test_reconfigure_mixes_config_and_driver_keys(self):
        m, prof, d = _setup()
        d.reconfigure(trace_sample_period=7, min_mem_share=0.25)
        assert m.ibs.period == 7
        assert prof.config.min_mem_share == 0.25

    def test_reconfigure_invalid_trace_period_is_atomic(self):
        # Regression: an invalid trace_sample_period used to be applied
        # *after* the plain config fields were already mutated, leaving
        # a half-applied config behind the ValueError.
        m, prof, d = _setup()
        before_share = prof.config.min_cpu_share
        before_period = m.ibs.period
        with pytest.raises(ValueError):
            d.reconfigure(min_cpu_share=0.42, trace_sample_period=0)
        assert prof.config.min_cpu_share == before_share
        assert m.ibs.period == before_period

    def test_reconfigure_non_integer_trace_period_is_atomic(self):
        m, prof, d = _setup()
        before = prof.config.min_mem_share
        with pytest.raises((TypeError, ValueError)):
            d.reconfigure(min_mem_share=0.33, trace_sample_period="fast")
        assert prof.config.min_mem_share == before

    def test_trace_source_frozen(self):
        _, prof, d = _setup()
        with pytest.raises(ValueError):
            d.reconfigure(trace_source="pebs")
        assert prof.config.trace_source == "ibs"

    def test_set_trace_period(self):
        m, prof, d = _setup()
        d.set_trace_period(5)
        assert m.ibs.period == 5


class TestStatistics:
    def test_statistics_keys(self):
        m, prof, d = _setup()
        vma = m.mmap(1, 32)
        d.add_program("p", [1])
        b = AccessBatch.from_pages(vma.vpns, pid=1)
        prof.observe_batch(b, m.run_batch(b))
        d.poll_epoch()
        s = d.statistics()
        assert s["epochs"] == 1
        assert s["programs"] == ["p"]
        assert s["pages_detected_abit"] == 32
        assert s["abit_scans"] == 1
        assert 0 <= s["overhead_fraction"] < 1


class TestNumaMaps:
    def test_format_one_pid(self):
        m, prof, d = _setup()
        vma = m.mmap(1, 32, name="heap")
        d.add_program("p", [1])
        b = AccessBatch.from_pages(vma.vpns, pid=1, is_store=True)
        prof.observe_batch(b, m.run_batch(b))
        d.poll_epoch()
        text = format_numa_maps(m, prof.store, 1)
        assert "heap" in text
        assert "anon=32" in text
        assert "dirty=32" in text
        assert "abit=32" in text

    def test_unknown_pid(self):
        m, prof, _ = _setup()
        with pytest.raises(KeyError):
            format_numa_maps(m, prof.store, 404)

    def test_daemon_numa_maps_all(self):
        m, prof, d = _setup()
        m.mmap(1, 8)
        m.mmap(2, 8)
        text = d.numa_maps()
        assert "# pid 1" in text and "# pid 2" in text

    def test_hottest_page_reported(self):
        m, prof, d = _setup()
        vma = m.mmap(1, 8, name="heap")
        d.add_program("p", [1])
        # Spread the hot page's accesses across lines so they reach
        # memory (cache-resident reuse is deliberately not counted).
        rng = np.random.default_rng(0)
        hot = np.repeat(vma.vpns[3:4], 50)
        offsets = np.concatenate(
            [np.zeros(8, dtype=np.int64), rng.permutation(50) * 64]
        )
        b = AccessBatch.from_pages(np.concatenate([vma.vpns, hot]), pid=1, offset=offsets)
        prof.observe_batch(b, m.run_batch(b))
        d.poll_epoch()
        text = format_numa_maps(m, prof.store, 1)
        expected = hex((vma.start_vpn + 3) << 12)
        assert f"hottest={expected}" in text
