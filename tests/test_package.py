"""Public API surface tests."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.memsim",
    "repro.workloads",
    "repro.core",
    "repro.tiering",
    "repro.tiering.policies",
    "repro.analysis",
    "repro.cli",
]


class TestSurface:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackages_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", SUBPACKAGES[:-1] + ["repro"])
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"

    def test_top_level_quickstart_names(self):
        # The README quickstart's imports must keep working.
        for name in (
            "Machine",
            "MachineConfig",
            "TMProfiler",
            "TMPConfig",
            "TieredSimulator",
            "HistoryPolicy",
            "make_workload",
            "record_run",
            "evaluate_recorded",
        ):
            assert hasattr(repro, name)

    def test_docstrings_on_public_classes(self):
        from repro import (
            HistoryPolicy,
            Machine,
            OraclePolicy,
            TMPConfig,
            TMProfiler,
            TieredSimulator,
        )

        for obj in (
            Machine,
            TMProfiler,
            TMPConfig,
            TieredSimulator,
            HistoryPolicy,
            OraclePolicy,
        ):
            assert obj.__doc__ and obj.__doc__.strip()

    def test_workload_names_match_registry(self):
        from repro.workloads import WORKLOAD_NAMES, WORKLOADS

        assert tuple(WORKLOADS) == WORKLOAD_NAMES

    def test_policy_registry_instantiable(self):
        from repro.tiering.policies import POLICIES

        for cls in POLICIES.values():
            assert cls().name == cls.name
