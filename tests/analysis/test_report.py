"""Unit tests for text rendering."""

from repro.analysis import format_csv, format_ratio, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len({len(l) for l in lines}) == 1  # all same width

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("oracle/combined", ["1/8", "1/16"], [0.9, 0.8])
        assert "1/8=0.900" in out
        assert "1/16=0.800" in out
        assert out.startswith("oracle/combined")


class TestFormatCsv:
    def test_basic(self):
        out = format_csv(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = out.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_quoting(self):
        out = format_csv(["v"], [['he said "hi", twice']])
        assert out.splitlines()[1] == '"he said ""hi"", twice"'

    def test_float_precision_preserved(self):
        out = format_csv(["v"], [[1 / 3]])
        assert float(out.splitlines()[1]) == 1 / 3

    def test_empty_rows(self):
        assert format_csv(["a"], []) == "a"


class TestFormatRatio:
    def test_ratio(self):
        assert format_ratio(113.0, 100.0) == "1.13x"

    def test_zero_reference(self):
        assert format_ratio(1.0, 0.0) == "inf"
