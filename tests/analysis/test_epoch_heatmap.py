"""Unit tests for per-epoch sample heatmaps (the Fig. 3 time axis)."""

import numpy as np

from repro.analysis.heatmap import heatmap_from_epoch_samples
from repro.memsim.events import SampleBatch


def _samples(pfns):
    pfns = np.asarray(pfns, dtype=np.uint64)
    n = pfns.size
    return SampleBatch(
        op_idx=np.arange(n, dtype=np.uint64),
        cpu=np.zeros(n, dtype=np.int16),
        pid=np.ones(n, dtype=np.int32),
        ip=np.zeros(n, dtype=np.uint64),
        vaddr=pfns << np.uint64(12),
        paddr=pfns << np.uint64(12),
        is_store=np.zeros(n, dtype=bool),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, 4, dtype=np.uint8),
    )


class TestEpochHeatmap:
    def test_one_column_per_epoch(self):
        h = heatmap_from_epoch_samples(
            [_samples([0]), _samples([1, 1]), _samples([])],
            n_addr_bins=2,
            n_frames=2,
        )
        assert h.shape == (2, 3)
        assert h[0, 0] == 1
        assert h[1, 1] == 2
        assert h[:, 2].sum() == 0

    def test_none_epochs_tolerated(self):
        h = heatmap_from_epoch_samples([None, _samples([3])], n_addr_bins=4, n_frames=4)
        assert h[:, 0].sum() == 0
        assert h[3, 1] == 1

    def test_n_frames_inferred(self):
        h = heatmap_from_epoch_samples([_samples([7])], n_addr_bins=8)
        assert h.shape == (8, 1)
        assert h[7, 0] == 1  # max pfn 7 → 8 frames → one per bin

    def test_empty_list(self):
        h = heatmap_from_epoch_samples([], n_addr_bins=4)
        assert h.shape == (4, 0)

    def test_column_sums_equal_sample_counts(self):
        epochs = [_samples(np.arange(10)), _samples(np.arange(3))]
        h = heatmap_from_epoch_samples(epochs, n_addr_bins=5, n_frames=10)
        np.testing.assert_array_equal(h.sum(axis=0), [10, 3])
