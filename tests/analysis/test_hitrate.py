"""Tests for the Fig. 6 sweep helpers."""

import pytest

from repro.analysis import sweep_recorded
from repro.analysis.hitrate import fig6_sweep
from repro.memsim import MachineConfig
from repro.tiering import record_run
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def recording():
    w = make_workload("data-caching", accesses_per_epoch=80_000)
    return record_run(
        w, machine_config=MachineConfig.scaled(ibs_period=16), epochs=4, seed=0
    )


class TestSweepRecorded:
    def test_grid_complete(self, recording):
        points = sweep_recorded(recording, ratios=(1 / 8, 1 / 32))
        # 2 policies x 3 sources x 2 ratios.
        assert len(points) == 12
        assert {p.policy for p in points} == {"oracle", "history"}
        assert {p.source for p in points} == {"abit", "trace", "combined"}

    def test_hitrates_valid(self, recording):
        for p in sweep_recorded(recording, ratios=(1 / 16,)):
            assert 0.0 <= p.hitrate <= 1.0

    def test_ratio_monotonicity(self, recording):
        points = sweep_recorded(
            recording, policies=("oracle",), sources=("trace",), ratios=(1 / 128, 1 / 8)
        )
        small, big = points[0], points[1]
        # points come out in ratio order per (policy, source)
        by_ratio = {p.ratio: p.hitrate for p in points}
        assert by_ratio[1 / 8] > by_ratio[1 / 128]

    def test_unknown_policy(self, recording):
        with pytest.raises(ValueError):
            sweep_recorded(recording, policies=("vibes",))


class TestFig6Sweep:
    def test_end_to_end_small(self):
        points = fig6_sweep(
            ["web-serving"],
            epochs=3,
            ratios=(1 / 8,),
            workload_kw=dict(accesses_per_epoch=40_000),
        )
        assert len(points) == 6
        assert all(p.workload == "web-serving" for p in points)
