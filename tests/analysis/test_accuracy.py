"""Unit and property tests for profiler accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.accuracy import RankAccuracy, rank_accuracy, spearman


class TestSpearman:
    def test_perfect_agreement(self):
        a = np.array([1.0, 5.0, 3.0, 9.0])
        assert spearman(a, a * 10) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(a, -a) == pytest.approx(-1.0)

    def test_constant_input(self):
        assert spearman(np.ones(5), np.arange(5)) == 0.0

    def test_tiny_inputs(self):
        assert spearman(np.array([1.0]), np.array([2.0])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman(np.ones(3), np.ones(4))

    def test_ties_averaged(self):
        # Ties get average ranks: monotone-with-ties still correlates.
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([5.0, 5.0, 6.0, 7.0])
        assert spearman(a, b) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=50)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, values):
        a = np.asarray(values)
        rng = np.random.default_rng(0)
        b = rng.permutation(a)
        r = spearman(a, b)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestRankAccuracy:
    def test_perfect_predictor(self):
        truth = np.array([0.0, 10.0, 5.0, 0.0, 1.0])
        acc = rank_accuracy(truth.copy(), truth, k=2)
        assert acc.precision == 1.0
        assert acc.recall == 1.0
        assert acc.weighted_coverage == pytest.approx(15 / 16)
        assert acc.f1 == 1.0

    def test_blind_predictor(self):
        truth = np.array([10.0, 10.0, 0.0, 0.0])
        pred = np.array([0.0, 0.0, 5.0, 5.0])
        acc = rank_accuracy(pred, truth, k=2)
        assert acc.precision == 0.0
        assert acc.recall == 0.0
        assert acc.weighted_coverage == 0.0
        assert acc.f1 == 0.0

    def test_partial(self):
        truth = np.array([10.0, 9.0, 1.0, 0.0])
        pred = np.array([5.0, 0.0, 4.0, 0.0])
        acc = rank_accuracy(pred, truth, k=2)
        assert acc.precision == pytest.approx(0.5)
        assert acc.recall == pytest.approx(0.5)

    def test_length_padding(self):
        acc = rank_accuracy(np.array([1.0]), np.array([1.0, 2.0, 3.0]), k=1)
        assert 0 <= acc.recall <= 1

    def test_zero_truth(self):
        acc = rank_accuracy(np.array([1.0, 0.0]), np.zeros(2), k=1)
        assert acc.weighted_coverage == 0.0
        assert acc.recall == 0.0

    def test_sparse_predictor_precision_over_fewer_picks(self):
        # Predictor only ranks one page; precision is over its 1 pick.
        truth = np.array([10.0, 9.0, 8.0, 0.0])
        pred = np.array([0.0, 3.0, 0.0, 0.0])
        acc = rank_accuracy(pred, truth, k=3)
        assert acc.precision == 1.0
        assert acc.recall == pytest.approx(1 / 3)


class TestOnRealProfiles:
    def test_combined_accuracy_on_recording(self):
        from repro.memsim import MachineConfig
        from repro.tiering import record_run
        from repro.workloads import make_workload
        from repro.core.hotness import hotness_rank

        rec = record_run(
            make_workload("data-caching", accesses_per_epoch=80_000),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=3,
            seed=0,
        )
        r = rec.epochs[-1]
        k = rec.footprint_pages // 16
        trace = rank_accuracy(
            hotness_rank(r.profile, "trace"), r.mem_counts.astype(float), k
        )
        abit = rank_accuracy(
            hotness_rank(r.profile, "abit"), r.mem_counts.astype(float), k
        )
        # The trace view is a far better memory-hotness predictor than
        # the budgeted A-bit scan (the paper's accuracy claim, measured).
        assert trace.weighted_coverage > abit.weighted_coverage
        assert trace.f1 > abit.f1
        assert trace.spearman > 0.2
