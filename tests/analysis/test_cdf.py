"""Unit tests for CDF and hot-set analyses."""

import numpy as np
import pytest

from repro.analysis import (
    access_cdf,
    hot_classification_fraction,
    pages_for_mass,
    sample_cdf_at,
)


class TestAccessCdf:
    def test_basic(self):
        values, frac = access_cdf(np.array([0, 1, 1, 2, 4]))
        np.testing.assert_array_equal(values, [1, 2, 4])
        np.testing.assert_allclose(frac, [0.5, 0.75, 1.0])

    def test_excludes_zeros(self):
        values, frac = access_cdf(np.array([0, 0, 3]))
        np.testing.assert_array_equal(values, [3])
        np.testing.assert_allclose(frac, [1.0])

    def test_empty(self):
        values, frac = access_cdf(np.zeros(4))
        assert values.size == 0 and frac.size == 0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 100, 1000)
        _, frac = access_cdf(counts)
        assert (np.diff(frac) >= 0).all()
        assert frac[-1] == pytest.approx(1.0)


class TestSampleCdfAt:
    def test_values(self):
        counts = np.array([0, 1, 2, 3, 4])
        assert sample_cdf_at(counts, 2) == pytest.approx(0.5)
        assert sample_cdf_at(counts, 100) == 1.0

    def test_empty(self):
        assert sample_cdf_at(np.zeros(3), 1) == 0.0


class TestPagesForMass:
    def test_concentrated(self):
        counts = np.array([100, 1, 1, 1])
        assert pages_for_mass(counts, 0.9) == 1

    def test_uniform(self):
        counts = np.ones(10)
        assert pages_for_mass(counts, 0.5) == 5

    def test_full_mass(self):
        counts = np.array([5, 5])
        assert pages_for_mass(counts, 1.0) == 2

    def test_zero_total(self):
        assert pages_for_mass(np.zeros(5), 0.5) == 0

    def test_bad_mass(self):
        with pytest.raises(ValueError):
            pages_for_mass(np.ones(2), 0.0)
        with pytest.raises(ValueError):
            pages_for_mass(np.ones(2), 1.5)


class TestHotClassification:
    def test_perfect_classifier(self):
        ref = np.array([True, True, False, False])
        counts = np.array([10, 9, 0, 0])
        assert hot_classification_fraction(counts, ref, capacity=2) == 1.0

    def test_blind_classifier(self):
        # Classifier only sees pages outside the reference set.
        ref = np.array([True, True, False, False])
        counts = np.array([0, 0, 5, 5])
        assert hot_classification_fraction(counts, ref, capacity=2) == 0.0

    def test_partial(self):
        ref = np.array([True, True, True, True])
        counts = np.array([1, 0, 0, 2])
        assert hot_classification_fraction(counts, ref, capacity=4) == pytest.approx(0.5)

    def test_no_reference(self):
        assert hot_classification_fraction(np.ones(3), np.zeros(3, dtype=bool), 2) == 0.0
