"""Unit tests for heatmap construction and rendering."""

import numpy as np
import pytest

from repro.analysis import heatmap_from_profiles, heatmap_from_samples, render_heatmap
from repro.core.page_stats import EpochProfile
from repro.memsim.events import SampleBatch


def _samples(op_idx, pfns):
    op_idx = np.asarray(op_idx, dtype=np.uint64)
    pfns = np.asarray(pfns, dtype=np.uint64)
    n = op_idx.size
    return SampleBatch(
        op_idx=op_idx,
        cpu=np.zeros(n, dtype=np.int16),
        pid=np.ones(n, dtype=np.int32),
        ip=np.zeros(n, dtype=np.uint64),
        vaddr=pfns << np.uint64(12),
        paddr=pfns << np.uint64(12),
        is_store=np.zeros(n, dtype=bool),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, 4, dtype=np.uint8),
    )


class TestFromSamples:
    def test_shape(self):
        h = heatmap_from_samples(_samples([0, 50, 99], [0, 5, 9]), n_time_bins=10, n_addr_bins=5)
        assert h.shape == (5, 10)
        assert h.sum() == 3

    def test_placement(self):
        h = heatmap_from_samples(
            _samples([0, 99], [0, 9]),
            n_time_bins=2,
            n_addr_bins=2,
            op_range=(0, 100),
            pfn_range=(0, 10),
        )
        assert h[0, 0] == 1  # early op, low address
        assert h[1, 1] == 1  # late op, high address

    def test_empty(self):
        h = heatmap_from_samples(SampleBatch.empty(), n_time_bins=4, n_addr_bins=4)
        assert h.shape == (4, 4)
        assert h.sum() == 0

    def test_intensity_counts(self):
        h = heatmap_from_samples(
            _samples([1, 1, 1], [2, 2, 2]), n_time_bins=1, n_addr_bins=1
        )
        assert h[0, 0] == 3


class TestFromProfiles:
    def _profiles(self):
        return [
            EpochProfile(epoch=0, abit=np.array([1, 0, 0, 2]), trace=np.array([0, 5, 0, 0])),
            EpochProfile(epoch=1, abit=np.array([0, 1, 1, 0]), trace=np.array([1, 0, 0, 1])),
        ]

    def test_abit_field(self):
        h = heatmap_from_profiles(self._profiles(), field="abit", n_addr_bins=2, n_frames=4)
        assert h.shape == (2, 2)
        assert h[0, 0] == 1  # pages 0-1, epoch 0
        assert h[1, 0] == 2  # pages 2-3, epoch 0

    def test_trace_field(self):
        h = heatmap_from_profiles(self._profiles(), field="trace", n_addr_bins=2, n_frames=4)
        assert h[0, 0] == 5

    def test_rank_field(self):
        h = heatmap_from_profiles(self._profiles(), field="rank", n_addr_bins=1, n_frames=4)
        assert h[0, 0] == pytest.approx(8, rel=1e-6)

    def test_bad_field(self):
        with pytest.raises(ValueError):
            heatmap_from_profiles(self._profiles(), field="vibes")

    def test_empty(self):
        h = heatmap_from_profiles([], n_addr_bins=4)
        assert h.shape == (4, 0)

    def test_ragged_profiles_padded(self):
        profiles = [
            EpochProfile(epoch=0, abit=np.array([1, 1]), trace=np.zeros(2, dtype=np.int64)),
            EpochProfile(epoch=1, abit=np.array([0, 0, 0, 3]), trace=np.zeros(4, dtype=np.int64)),
        ]
        h = heatmap_from_profiles(profiles, field="abit", n_addr_bins=2)
        assert h.shape == (2, 2)
        assert h[1, 1] == 3


class TestRender:
    def test_renders_lines(self):
        h = np.array([[0, 1], [5, 0]])
        out = render_heatmap(h, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 4  # title + 2 rows + axis
        assert lines[1].startswith("|") and lines[1].endswith("|")

    def test_high_address_on_top(self):
        h = np.array([[0, 0], [9, 9]])  # row 1 = high addresses
        out = render_heatmap(h, title="")
        rows = [l for l in out.splitlines() if l.startswith("|")]
        assert rows[0] != rows[1]
        assert rows[0].count(" ") < rows[1].count(" ")  # top row denser

    def test_all_zero(self):
        out = render_heatmap(np.zeros((2, 3)))
        assert "|   |" in out

    def test_empty_matrix(self):
        assert render_heatmap(np.zeros((0, 0)), title="t") == "t"
