"""Integration tests for Table IV and overhead measurement helpers."""

import pytest

from repro.analysis import (
    DetectionRow,
    detected_pages_for,
    measure_overhead,
    rate_improvements,
)
from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.workloads import make_workload


class TestDetectedPages:
    def test_row_fields(self):
        row = detected_pages_for(
            "gups",
            rate="4x",
            epochs=2,
            workload_kw=dict(footprint_pages=2048, accesses_per_epoch=40_000),
        )
        assert row.workload == "gups"
        assert row.rate == "4x"
        assert row.abit > 0
        assert row.trace > 0
        assert row.both <= min(row.abit, row.trace)

    def test_higher_rate_detects_more(self):
        kw = dict(workload_kw=dict(footprint_pages=8192, accesses_per_epoch=40_000), epochs=3)
        slow = detected_pages_for("gups", rate="default", **kw)
        fast = detected_pages_for("gups", rate="8x", **kw)
        assert fast.trace > slow.trace

    def test_unknown_rate(self):
        with pytest.raises(KeyError):
            detected_pages_for("gups", rate="16x", epochs=1)


class TestRateImprovements:
    def test_computation(self):
        rows = [
            DetectionRow("w", "default", 10, 100, 5),
            DetectionRow("w", "4x", 10, 250, 5),
            DetectionRow("w", "8x", 10, 300, 5),
        ]
        g = rate_improvements(rows)
        assert g["gain_4x_over_default"] == pytest.approx(2.5)
        assert g["gain_8x_over_4x"] == pytest.approx(1.2)

    def test_empty(self):
        g = rate_improvements([])
        assert g["gain_4x_over_default"] == 0.0


class TestMeasureOverhead:
    def test_report_fields(self):
        w = make_workload("gups", footprint_pages=2048, accesses_per_epoch=40_000)
        rep = measure_overhead(w, label="x", epochs=3)
        assert rep.app_time_s > 0
        assert rep.total_s == pytest.approx(
            rep.abit_s + rep.trace_s + rep.hwpc_s + rep.filter_s
        )
        assert rep.fraction < 0.2
        assert rep.abit_scans == 3

    def test_abit_only_configuration(self):
        w = make_workload("gups", footprint_pages=2048, accesses_per_epoch=40_000)
        rep = measure_overhead(
            w, tmp_config=TMPConfig(trace_enabled=False), epochs=3
        )
        assert rep.trace_samples == 0
        assert rep.trace_s == 0
        assert rep.abit_s > 0

    def test_faster_sampling_costs_more(self):
        def run(period):
            w = make_workload("gups", footprint_pages=2048, accesses_per_epoch=40_000)
            return measure_overhead(
                w,
                machine_config=MachineConfig.scaled(ibs_period=period),
                epochs=3,
            )

        assert run(8).trace_fraction > run(64).trace_fraction
