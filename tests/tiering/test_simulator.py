"""Integration tests for the online tiered simulator."""

import numpy as np
import pytest

from repro.memsim import MachineConfig
from repro.workloads import make_workload
from repro.tiering import (
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    RandomPolicy,
    TieredSimulator,
    TrueOraclePolicy,
)


def _sim(policy, wname="data-caching", **kw):
    defaults = dict(
        tier1_ratio=1 / 16,
        machine_config=MachineConfig.scaled(ibs_period=16),
        seed=0,
    )
    defaults.update(kw)
    w = make_workload(wname)
    return TieredSimulator(w, policy, **defaults)


class TestBasics:
    def test_runs_and_reports(self):
        res = _sim(HistoryPolicy()).run(3)
        assert len(res.epochs) == 3
        assert res.policy == "history"
        assert res.workload == "data-caching"
        for e in res.epochs:
            assert 0 <= e.hitrate <= 1
            assert e.runtime_s > 0

    def test_capacity_from_ratio(self):
        sim = _sim(FCFAPolicy(), tier1_ratio=1 / 8)
        assert sim.tier1_capacity == round(sim.workload.footprint_pages / 8)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            _sim(FCFAPolicy(), tier1_ratio=0.0)
        with pytest.raises(ValueError):
            _sim(FCFAPolicy(), tier1_ratio=1.5)

    def test_bad_slices(self):
        with pytest.raises(ValueError):
            _sim(FCFAPolicy(), epoch_slices=0)

    def test_deterministic(self):
        a = _sim(HistoryPolicy()).run(3)
        b = _sim(HistoryPolicy()).run(3)
        assert a.mean_hitrate == b.mean_hitrate
        assert a.total_migrations == b.total_migrations


class TestStepping:
    """The incremental start()/step() driving style (service path)."""

    def test_step_matches_run_bit_identical(self):
        batch = _sim(HistoryPolicy()).run(4)
        sim = _sim(HistoryPolicy())
        sim.start()
        stepped = sim.step(1) + sim.step(2) + sim.step(1)
        assert sim.epochs_run == 4
        for a, b in zip(batch.epochs, stepped):
            assert a.hitrate == b.hitrate
            assert a.promoted == b.promoted
            assert a.demoted == b.demoted
            assert a.runtime_s == b.runtime_s
        assert sim.result.mean_hitrate == batch.mean_hitrate

    def test_step_requires_start(self):
        with pytest.raises(RuntimeError, match="start"):
            _sim(HistoryPolicy()).step()

    def test_double_start_rejected(self):
        sim = _sim(HistoryPolicy())
        sim.start()
        with pytest.raises(RuntimeError, match="already started"):
            sim.start()

    def test_run_after_run_rejected(self):
        sim = _sim(HistoryPolicy())
        sim.run(1)
        with pytest.raises(RuntimeError, match="already started"):
            sim.run(1)

    def test_bad_step_count(self):
        sim = _sim(HistoryPolicy())
        sim.start()
        with pytest.raises(ValueError):
            sim.step(0)

    def test_epoch_hooks_fire_in_order(self):
        sim = _sim(HistoryPolicy())
        seen = []
        sim.add_epoch_hook(lambda m: seen.append(m.epoch))
        sim.start()
        sim.step(2)
        sim.step(1)
        assert seen == [0, 1, 2]
        assert [m.epoch for m in sim.result.epochs] == [0, 1, 2]


class TestPolicyOrdering:
    def test_true_oracle_beats_fcfa(self):
        oracle = _sim(TrueOraclePolicy()).run(5)
        fcfa = _sim(FCFAPolicy()).run(5)
        assert oracle.mean_hitrate > fcfa.mean_hitrate + 0.05

    def test_fcfa_never_migrates(self):
        res = _sim(FCFAPolicy()).run(4)
        assert res.total_migrations == 0

    def test_history_beats_random(self):
        hist = _sim(HistoryPolicy()).run(5)
        rand = _sim(RandomPolicy(seed=3)).run(5)
        assert hist.mean_hitrate > rand.mean_hitrate

    def test_oracle_at_least_history(self):
        oracle = _sim(OraclePolicy()).run(5)
        hist = _sim(HistoryPolicy()).run(5)
        assert oracle.mean_hitrate >= hist.mean_hitrate - 0.02


class TestCapacitySweep:
    def test_hitrate_monotone_in_capacity(self):
        rates = []
        for ratio in (1 / 256, 1 / 64, 1 / 16):
            rates.append(_sim(TrueOraclePolicy(), tier1_ratio=ratio).run(4).mean_hitrate)
        assert rates[0] < rates[1] < rates[2]

    def test_full_capacity_perfect(self):
        res = _sim(TrueOraclePolicy(), tier1_ratio=1.0).run(3)
        assert res.mean_hitrate > 0.95


class TestRuntimeModel:
    def test_runtime_decomposition(self):
        res = _sim(HistoryPolicy()).run(3)
        for e in res.epochs:
            assert e.runtime_s == pytest.approx(
                e.latency.total_s + e.profiler_overhead_s
            )

    def test_speedup_over(self):
        hist = _sim(HistoryPolicy()).run(4)
        fcfa = _sim(FCFAPolicy()).run(4)
        s = hist.speedup_over(fcfa)
        assert s == pytest.approx(fcfa.total_runtime_s / hist.total_runtime_s)


class TestInitPhase:
    def test_init_places_everything_touched(self):
        sim = _sim(FCFAPolicy())
        res = sim.run(2, init=True)
        from repro.tiering.tiers import UNPLACED

        assert sim.tiers.occupancy(UNPLACED) == 0

    def test_no_init_differs(self):
        a = _sim(FCFAPolicy()).run(3, init=True)
        b = _sim(FCFAPolicy()).run(3, init=False)
        # Init changes first-touch order and thus FCFA's placement.
        assert a.mean_hitrate != b.mean_hitrate
