"""Unit tests for tier specs and the placement map."""

import numpy as np
import pytest

from repro.tiering import TIER1, TIER2, UNPLACED, TieredMemory, TierSpec, make_tiers


class TestTierSpec:
    def test_fields(self):
        t = TierSpec("dram", 100, 80.0)
        assert t.name == "dram"
        assert t.capacity_pages == 100

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TierSpec("x", -1, 80.0)

    def test_frozen(self):
        t = TierSpec("dram", 100, 80.0)
        with pytest.raises(AttributeError):
            t.capacity_pages = 5


class TestTieredMemory:
    def test_initially_unplaced(self):
        tm = make_tiers(10, 4)
        assert tm.occupancy(UNPLACED) == 10
        assert tm.occupancy(TIER1) == 0

    def test_place_and_query(self):
        tm = make_tiers(10, 4)
        tm.place(np.array([1, 3]), TIER1)
        np.testing.assert_array_equal(tm.tier1_pages(), [1, 3])
        np.testing.assert_array_equal(tm.is_tier1(np.array([1, 2, 3])), [True, False, True])

    def test_capacity_enforced(self):
        tm = make_tiers(10, 2)
        tm.place(np.array([0, 1]), TIER1)
        with pytest.raises(MemoryError, match="over capacity"):
            tm.place(np.array([2]), TIER1)

    def test_replace_same_pages_not_counted_twice(self):
        tm = make_tiers(10, 2)
        tm.place(np.array([0, 1]), TIER1)
        tm.place(np.array([0, 1]), TIER1)  # no-op, no capacity error
        assert tm.occupancy(TIER1) == 2

    def test_move_between_tiers(self):
        tm = make_tiers(10, 4)
        tm.place(np.array([5]), TIER1)
        tm.place(np.array([5]), TIER2)
        assert tm.occupancy(TIER1) == 0
        np.testing.assert_array_equal(tm.tier2_pages(), [5])

    def test_free_pages(self):
        tm = make_tiers(10, 4)
        tm.place(np.array([0]), TIER1)
        assert tm.free_pages(TIER1) == 3

    def test_resize_preserves(self):
        tm = make_tiers(4, 2)
        tm.place(np.array([1]), TIER1)
        tm.resize(8)
        assert tm.n_frames == 8
        np.testing.assert_array_equal(tm.tier1_pages(), [1])
        assert tm.tier_of[7] == UNPLACED

    def test_resize_shrink_noop(self):
        tm = make_tiers(8, 2)
        tm.resize(4)
        assert tm.n_frames == 8

    def test_summary(self):
        tm = make_tiers(10, 4)
        tm.place(np.array([0, 1]), TIER1)
        tm.place(np.array([2]), TIER2)
        s = tm.summary()
        assert s["tier1_used"] == 2
        assert s["tier2_used"] == 1
        assert s["unplaced"] == 7

    def test_empty_place(self):
        tm = make_tiers(4, 2)
        tm.place(np.zeros(0, dtype=np.int64), TIER1)
        assert tm.occupancy(TIER1) == 0

    def test_make_tiers_default_tier2_fits_all(self):
        tm = make_tiers(100, 4)
        tm.place(np.arange(100), TIER2)
        assert tm.occupancy(TIER2) == 100
