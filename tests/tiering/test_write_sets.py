"""Per-epoch write-set semantics (PML + D-bit re-arming)."""

import numpy as np

from repro.memsim import MachineConfig
from repro.tiering import record_run
from repro.workloads import make_workload


class TestEpochWriteSets:
    def test_steady_writers_logged_every_epoch(self):
        """With D bits re-armed each epoch, a page written every epoch
        appears in every epoch's write set — not just the first."""
        rec = record_run(
            make_workload("data-caching", accesses_per_epoch=80_000),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=4,
            seed=0,
        )
        # memcached SETs hit the Zipf head every epoch.
        sets = [set(r.dirty_pages.tolist()) for r in rec.epochs]
        assert all(len(s) > 0 for s in sets)
        # Later epochs keep reporting writes (would collapse to ~0
        # without the re-arm).
        assert len(sets[2]) > 0.2 * len(sets[0])
        # And the hot write set recurs across epochs.
        recurring = sets[1] & sets[2]
        assert len(recurring) > 0

    def test_read_only_workload_has_empty_write_sets(self):
        rec = record_run(
            make_workload("xsbench", accesses_per_epoch=40_000),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=2,
            seed=0,
        )
        # XSBench epochs are pure lookups (all loads).
        for r in rec.epochs:
            assert r.dirty_pages.size == 0
