"""Unit tests for placement policies."""

import numpy as np
import pytest

from repro.core.page_stats import EpochProfile
from repro.tiering import (
    AutoNUMAPolicy,
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    POLICIES,
    RandomPolicy,
    TrueOraclePolicy,
    WriteAwarePolicy,
)
from repro.tiering.policies.base import PolicyContext, fill_with_residents


def _profile(abit, trace, epoch=0):
    return EpochProfile(
        epoch=epoch,
        abit=np.asarray(abit, dtype=np.int64),
        trace=np.asarray(trace, dtype=np.int64),
    )


def _ctx(
    n=8,
    cap=2,
    prev=None,
    nxt=None,
    counts=None,
    mem=None,
    tier1=(),
    source="combined",
    dirty=None,
):
    return PolicyContext(
        epoch=1,
        tier1_capacity=cap,
        n_frames=n,
        prev_profile=prev,
        next_profile=nxt,
        true_counts=None if counts is None else np.asarray(counts),
        true_mem_counts=None if mem is None else np.asarray(mem),
        current_tier1=np.asarray(tier1, dtype=np.int64),
        rank_source=source,
        dirty_pages=None if dirty is None else np.asarray(dirty, dtype=np.int64),
    )


class TestFillWithResidents:
    def test_pads_to_capacity(self):
        ctx = _ctx(cap=3, tier1=[5, 6, 7])
        out = fill_with_residents(np.array([1]), ctx)
        np.testing.assert_array_equal(out, [1, 5, 6])

    def test_no_duplicate_residents(self):
        ctx = _ctx(cap=3, tier1=[1, 5])
        out = fill_with_residents(np.array([1, 2]), ctx)
        np.testing.assert_array_equal(out, [1, 2, 5])

    def test_truncates_over_capacity(self):
        ctx = _ctx(cap=2)
        out = fill_with_residents(np.array([1, 2, 3]), ctx)
        np.testing.assert_array_equal(out, [1, 2])


class TestOracle:
    def test_uses_next_profile(self):
        nxt = _profile([0] * 8, [0, 0, 9, 0, 0, 3, 0, 0])
        pol = OraclePolicy()
        out = pol.target_tier1(_ctx(nxt=nxt, source="trace"))
        np.testing.assert_array_equal(out[:2], [2, 5])

    def test_source_sensitivity(self):
        nxt = _profile([0, 5, 0, 0, 0, 0, 0, 0], [0, 0, 9, 0, 0, 0, 0, 0])
        abit_top = OraclePolicy().target_tier1(_ctx(nxt=nxt, cap=1, source="abit"))
        trace_top = OraclePolicy().target_tier1(_ctx(nxt=nxt, cap=1, source="trace"))
        assert abit_top[0] == 1
        assert trace_top[0] == 2

    def test_requires_profile(self):
        with pytest.raises(ValueError, match="profile"):
            OraclePolicy().target_tier1(_ctx())


class TestTrueOracle:
    def test_uses_mem_counts(self):
        pol = TrueOraclePolicy()
        out = pol.target_tier1(
            _ctx(counts=[9, 0, 0, 0, 0, 0, 0, 0], mem=[0, 0, 7, 0, 0, 0, 0, 0])
        )
        assert out[0] == 2

    def test_fallback_to_counts(self):
        pol = TrueOraclePolicy()
        out = pol.target_tier1(_ctx(counts=[9, 0, 0, 0, 0, 0, 0, 0], mem=None))
        assert out[0] == 0

    def test_requires_counts(self):
        with pytest.raises(ValueError, match="counts"):
            TrueOraclePolicy().target_tier1(_ctx())


class TestHistory:
    def test_first_epoch_keeps_placement(self):
        out = HistoryPolicy().target_tier1(_ctx(tier1=[3, 4]))
        np.testing.assert_array_equal(out, [3, 4])

    def test_uses_previous_profile(self):
        prev = _profile([0] * 8, [0, 7, 0, 0, 0, 0, 0, 0])
        out = HistoryPolicy().target_tier1(_ctx(prev=prev, source="trace"))
        assert out[0] == 1

    def test_smoothing_accumulates(self):
        pol = HistoryPolicy(smoothing=0.9)
        hot_then_quiet = [
            _profile([0] * 8, [0, 10, 0, 0, 0, 0, 0, 0]),
            _profile([0] * 8, [0, 0, 0, 1, 0, 0, 0, 0]),
        ]
        pol.target_tier1(_ctx(prev=hot_then_quiet[0], cap=1, source="trace"))
        out = pol.target_tier1(_ctx(prev=hot_then_quiet[1], cap=1, source="trace"))
        # EMA remembers page 1 (9.0) over the new page 3 (0.1).
        assert out[0] == 1

    def test_memoryless_default_forgets(self):
        pol = HistoryPolicy()
        pol.target_tier1(
            _ctx(prev=_profile([0] * 8, [0, 10, 0, 0, 0, 0, 0, 0]), cap=1, source="trace")
        )
        out = pol.target_tier1(
            _ctx(prev=_profile([0] * 8, [0, 0, 0, 1, 0, 0, 0, 0]), cap=1, source="trace")
        )
        assert out[0] == 3

    def test_bad_smoothing(self):
        with pytest.raises(ValueError):
            HistoryPolicy(smoothing=1.0)

    def test_ema_handles_growth(self):
        pol = HistoryPolicy(smoothing=0.5)
        pol.target_tier1(_ctx(n=4, prev=_profile([0] * 4, [1, 0, 0, 0])))
        out = pol.target_tier1(_ctx(n=8, prev=_profile([0] * 8, [0] * 7 + [5])))
        assert out[0] == 7


class TestFCFA:
    def test_never_migrates(self):
        out = FCFAPolicy().target_tier1(_ctx(tier1=[2, 6]))
        np.testing.assert_array_equal(out, [2, 6])


class TestAutoNUMA:
    def test_detects_in_window(self):
        prev = _profile([1] * 8, [0] * 8)
        pol = AutoNUMAPolicy(window_pages=4)
        out = pol.target_tier1(_ctx(prev=prev, cap=4))
        np.testing.assert_array_equal(np.sort(out), [0, 1, 2, 3])
        assert pol.faults_incurred == 4

    def test_window_rotates(self):
        prev = _profile([1] * 8, [0] * 8)
        pol = AutoNUMAPolicy(window_pages=4)
        pol.target_tier1(_ctx(prev=prev, cap=4))
        out = pol.target_tier1(_ctx(prev=prev, cap=4))
        np.testing.assert_array_equal(np.sort(out), [4, 5, 6, 7])

    def test_bad_window(self):
        with pytest.raises(ValueError):
            AutoNUMAPolicy(window_pages=0)


class TestWriteAware:
    def test_write_boost_promotes_dirty(self):
        prev = _profile([0] * 8, [0, 4, 3, 0, 0, 0, 0, 0])
        plain = HistoryPolicy().target_tier1(_ctx(prev=prev, cap=1, source="trace"))
        boosted = WriteAwarePolicy(write_boost=2.0).target_tier1(
            _ctx(prev=prev, cap=1, source="trace", dirty=[2])
        )
        assert plain[0] == 1
        assert boosted[0] == 2  # 3*2 > 4

    def test_bad_boost(self):
        with pytest.raises(ValueError):
            WriteAwarePolicy(write_boost=0.5)


class TestRandomAndRegistry:
    def test_random_within_capacity_and_deterministic(self):
        prev = _profile([1] * 8, [0] * 8)
        a = RandomPolicy(seed=1).target_tier1(_ctx(prev=prev, cap=3))
        b = RandomPolicy(seed=1).target_tier1(_ctx(prev=prev, cap=3))
        np.testing.assert_array_equal(a, b)
        assert a.size == 3

    def test_registry_names(self):
        assert set(POLICIES) == {
            "oracle",
            "true-oracle",
            "history",
            "fcfa",
            "autonuma",
            "write-aware",
            "thermostat",
            "random",
        }
