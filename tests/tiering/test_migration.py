"""Unit tests for the epoch-batched page mover."""

import numpy as np

from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.tiering import TIER1, TIER2, PageMover, make_tiers


def _tm(n=10, cap=3):
    tm = make_tiers(n, cap)
    tm.place(np.arange(n), TIER2)  # everything starts slow
    return tm


class TestApplyTarget:
    def test_promotes_target(self):
        tm = _tm()
        mover = PageMover(tm)
        res = mover.apply_target(np.array([4, 7]))
        assert res.promoted == 2
        assert res.demoted == 0
        np.testing.assert_array_equal(tm.tier1_pages(), [4, 7])

    def test_demotes_evicted(self):
        tm = _tm()
        mover = PageMover(tm)
        mover.apply_target(np.array([1, 2, 3]))
        res = mover.apply_target(np.array([4, 5, 6]))
        assert res.promoted == 3 and res.demoted == 3
        np.testing.assert_array_equal(np.sort(tm.tier1_pages()), [4, 5, 6])
        assert tm.tier_of[1] == TIER2

    def test_stable_target_no_moves(self):
        tm = _tm()
        mover = PageMover(tm)
        mover.apply_target(np.array([1, 2]))
        res = mover.apply_target(np.array([1, 2]))
        assert res.moved == 0
        assert res.shootdowns == 0

    def test_target_clamped_to_capacity_hottest_first(self):
        tm = _tm(cap=2)
        mover = PageMover(tm)
        res = mover.apply_target(np.array([9, 8, 7, 6]))  # hottest-first order
        assert res.promoted == 2
        np.testing.assert_array_equal(np.sort(tm.tier1_pages()), [8, 9])

    def test_partial_overlap(self):
        tm = _tm()
        mover = PageMover(tm)
        mover.apply_target(np.array([1, 2, 3]))
        res = mover.apply_target(np.array([2, 3, 4]))
        assert res.promoted == 1 and res.demoted == 1

    def test_totals_accumulate(self):
        tm = _tm()
        mover = PageMover(tm)
        mover.apply_target(np.array([1]))
        mover.apply_target(np.array([2]))
        assert mover.total.promoted == 2
        assert mover.total.demoted == 1

    def test_empty_target_demotes_all(self):
        tm = _tm()
        mover = PageMover(tm)
        mover.apply_target(np.array([1, 2]))
        res = mover.apply_target(np.zeros(0, dtype=np.int64))
        assert res.demoted == 2
        assert tm.occupancy(TIER1) == 0


class TestShootdownIntegration:
    def test_single_shootdown_per_batch(self):
        m = Machine(MachineConfig(total_frames=1 << 12, tlb_entries=64, n_cpus=2))
        vma = m.mmap(1, 8)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        tm = make_tiers(m.n_frames, 4)
        tm.place(np.arange(m.n_frames), TIER2)
        mover = PageMover(tm, m)

        before = m.tlb.stats.shootdowns
        res = mover.apply_target(vma.pfns[:3].astype(np.int64))
        assert res.shootdowns == 1
        assert m.tlb.stats.shootdowns == before + 1
        # The moved pages' translations are gone; untouched ones remain.
        resident = m.tlb.contains(
            np.full(8, 1, dtype=np.int32), vma.vpns
        )
        assert not resident[:3].any()
        assert resident[3:].all()

    def test_no_moves_no_shootdown(self):
        m = Machine(MachineConfig(total_frames=1 << 12))
        m.mmap(1, 4)
        tm = make_tiers(m.n_frames, 2)
        tm.place(np.arange(m.n_frames), TIER2)
        mover = PageMover(tm, m)
        mover.apply_target(np.zeros(0, dtype=np.int64))
        assert m.tlb.stats.shootdowns == 0
