"""Unit tests for the emulation latency model (50/10/13 µs)."""

import numpy as np
import pytest

from repro.tiering import LatencyModel


def _score(lm, counts, slow, hot, migrations=0, base=1.0):
    return lm.epoch_latency(
        base_s=base,
        access_counts=np.asarray(counts),
        slow_mask=np.asarray(slow, dtype=bool),
        hot_mask=np.asarray(hot, dtype=bool),
        migrations=migrations,
    )


class TestCalibration:
    def test_paper_constants(self):
        lm = LatencyModel()
        assert lm.migration_s == pytest.approx(50e-6)
        assert lm.slow_access_s == pytest.approx(10e-6)
        assert lm.hot_slow_extra_s == pytest.approx(13e-6)


class TestEpochLatency:
    def test_all_fast_no_penalty(self):
        lm = LatencyModel()
        lat = _score(lm, [10, 10], [False, False], [True, False])
        assert lat.slow_fault_s == 0
        assert lat.total_s == pytest.approx(1.0)

    def test_slow_faults_capped_by_rounds(self):
        lm = LatencyModel(protect_rounds_per_epoch=4)
        lat = _score(lm, [100, 2], [True, True], [False, False])
        # Page 0: min(100,4)=4 faults; page 1: 2 faults.
        assert lat.slow_fault_s == pytest.approx(6 * 10e-6)

    def test_hot_slow_extra(self):
        lm = LatencyModel(protect_rounds_per_epoch=4)
        lat = _score(lm, [100, 100], [True, True], [True, False])
        assert lat.hot_slow_extra_s == pytest.approx(4 * 13e-6)

    def test_untouched_slow_pages_free(self):
        lm = LatencyModel()
        lat = _score(lm, [0, 0], [True, True], [False, False])
        assert lat.slow_fault_s == 0

    def test_migration_cost(self):
        lm = LatencyModel()
        lat = _score(lm, [0], [False], [False], migrations=10)
        assert lat.migration_s == pytest.approx(10 * 50e-6)

    def test_total_is_sum(self):
        lm = LatencyModel(protect_rounds_per_epoch=1)
        lat = _score(lm, [5, 5], [True, True], [True, False], migrations=2, base=0.5)
        assert lat.total_s == pytest.approx(
            0.5 + 2 * 10e-6 + 1 * 13e-6 + 2 * 50e-6
        )

    def test_better_placement_is_faster(self):
        lm = LatencyModel()
        counts = np.array([100, 1, 1, 1])
        hot = np.array([True, False, False, False])
        good = _score(lm, counts, [False, True, True, True], hot)
        bad = _score(lm, counts, [True, False, False, False], hot)
        assert good.total_s < bad.total_s
