"""Unit and behavioural tests for the Thermostat-style policy."""

import numpy as np
import pytest

from repro.core.page_stats import EpochProfile
from repro.memsim import MachineConfig
from repro.tiering import (
    HistoryPolicy,
    ThermostatPolicy,
    evaluate_recorded,
    record_run,
)
from repro.tiering.policies.base import PolicyContext
from repro.workloads import make_workload


def _ctx(n=8, cap=2, tier1=(), tlb=None, epoch=1):
    return PolicyContext(
        epoch=epoch,
        tier1_capacity=cap,
        n_frames=n,
        prev_profile=None,
        next_profile=None,
        true_counts=None,
        true_mem_counts=None,
        current_tier1=np.asarray(tier1, dtype=np.int64),
        tlb_miss_counts=None if tlb is None else np.asarray(tlb),
    )


class TestThermostatUnit:
    def test_first_epoch_keeps_placement(self):
        pol = ThermostatPolicy()
        out = pol.target_tier1(_ctx(tier1=[3], tlb=[0, 9, 0, 0, 0, 0, 0, 0]))
        np.testing.assert_array_equal(out, [3])

    def test_uses_previous_epoch_counts(self):
        pol = ThermostatPolicy()
        pol.target_tier1(_ctx(tlb=[0, 9, 0, 0, 0, 0, 0, 0]))
        out = pol.target_tier1(_ctx(tlb=[5, 0, 0, 0, 0, 0, 0, 0], cap=1))
        assert out[0] == 1  # last epoch's TLB-missing page, not this one's

    def test_handles_growth(self):
        pol = ThermostatPolicy()
        pol.target_tier1(_ctx(n=4, tlb=[1, 0, 0, 0]))
        out = pol.target_tier1(_ctx(n=8, tlb=[0] * 8, cap=1))
        assert out.size == 1

    def test_no_counts_keeps_placement(self):
        pol = ThermostatPolicy()
        out = pol.target_tier1(_ctx(tier1=[2, 5]))
        np.testing.assert_array_equal(out, [2, 5])


class TestThermostatVsHistory:
    def _eval(self, wname, policy, **kw):
        rec = record_run(
            make_workload(wname),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=6,
            seed=0,
        )
        return evaluate_recorded(rec, policy, tier1_ratio=1 / 16, **kw)

    def test_runs_on_recordings(self):
        res = self._eval("data-caching", ThermostatPolicy())
        assert 0 < res.mean_hitrate < 1

    def test_tlb_proxy_fails_on_streaming_locality(self):
        """The paper's §II-B critique, measured where it bites: LULESH's
        dwelled sweeps TLB-miss only once per page window while missing
        the LLC on nearly every access, so the TLB-miss proxy under-ranks
        exactly the pages that matter and loses to the trace rank."""
        thermo = self._eval("lulesh", ThermostatPolicy())
        history = self._eval("lulesh", HistoryPolicy(), rank_source="trace")
        assert history.mean_hitrate > thermo.mean_hitrate

    def test_tlb_proxy_competitive_when_signals_correlate(self):
        """The flip side: on Zipf key-value traffic, TLB misses and LLC
        misses track the same hot set — and Thermostat's counts are
        *exact* while the trace is sampled, so it stays competitive.
        (Its real cost is the fault overhead, not the ranking.)"""
        thermo = self._eval("data-caching", ThermostatPolicy())
        history = self._eval("data-caching", HistoryPolicy(), rank_source="trace")
        assert thermo.mean_hitrate > 0.8 * history.mean_hitrate
