"""Unit tests for first-come-first-allocate placement."""

import numpy as np

from repro.tiering import TIER1, TIER2, UNPLACED, make_tiers
from repro.tiering.placement import fcfa_full_placement, fcfa_place_new

NEVER = np.uint64(np.iinfo(np.uint64).max)


def _first_touch(*stamps):
    return np.array([NEVER if s is None else s for s in stamps], dtype=np.uint64)


class TestFcfaPlaceNew:
    def test_fills_tier1_in_touch_order(self):
        tm = make_tiers(4, 2)
        ft = _first_touch(30, 10, 20, 40)
        placed = fcfa_place_new(tm, ft, ft != NEVER)
        assert placed == 4
        # Pages 1 (t=10) and 2 (t=20) got the fast tier.
        np.testing.assert_array_equal(tm.tier1_pages(), [1, 2])
        np.testing.assert_array_equal(tm.tier2_pages(), [0, 3])

    def test_untouched_stay_unplaced(self):
        tm = make_tiers(3, 2)
        ft = _first_touch(5, None, 7)
        fcfa_place_new(tm, ft, ft != NEVER)
        assert tm.tier_of[1] == UNPLACED

    def test_incremental_placement(self):
        tm = make_tiers(4, 2)
        ft = _first_touch(10, None, None, None)
        fcfa_place_new(tm, ft, ft != NEVER)
        assert tm.occupancy(TIER1) == 1
        # Page 2 touched later: takes the last tier1 slot.
        ft2 = _first_touch(10, None, 50, None)
        placed = fcfa_place_new(tm, ft2, ft2 != NEVER)
        assert placed == 1
        np.testing.assert_array_equal(tm.tier1_pages(), [0, 2])

    def test_already_placed_untouched_by_second_call(self):
        tm = make_tiers(2, 1)
        ft = _first_touch(10, 20)
        fcfa_place_new(tm, ft, ft != NEVER)
        before = tm.tier_of.copy()
        assert fcfa_place_new(tm, ft, ft != NEVER) == 0
        np.testing.assert_array_equal(tm.tier_of, before)

    def test_grows_map(self):
        tm = make_tiers(2, 1)
        ft = _first_touch(10, 20, 30)
        fcfa_place_new(tm, ft, ft != NEVER)
        assert tm.n_frames == 3
        assert tm.tier_of[2] == TIER2


class TestFcfaFullPlacement:
    def test_pure_function(self):
        ft = _first_touch(30, 10, None, 20)
        tiers = fcfa_full_placement(4, 2, ft)
        assert tiers[1] == TIER1 and tiers[3] == TIER1
        assert tiers[0] == TIER2
        assert tiers[2] == UNPLACED
