"""Round-trip tests for recording serialization."""

import numpy as np
import pytest

from repro.memsim import MachineConfig
from repro.tiering import evaluate_recorded, record_run
from repro.tiering.policies import HistoryPolicy
from repro.tiering.serialize import load_recorded, save_recorded
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def recording():
    w = make_workload("web-serving", accesses_per_epoch=40_000)
    return record_run(
        w, machine_config=MachineConfig.scaled(ibs_period=16), epochs=3, seed=0
    )


class TestRoundTrip:
    def test_metadata(self, recording, tmp_path):
        p = save_recorded(recording, tmp_path / "run.npz")
        loaded = load_recorded(p)
        assert loaded.workload == recording.workload
        assert loaded.footprint_pages == recording.footprint_pages
        assert loaded.n_frames == recording.n_frames
        assert loaded.n_epochs == recording.n_epochs
        assert loaded.event_totals == recording.event_totals

    def test_arrays_identical(self, recording, tmp_path):
        loaded = load_recorded(save_recorded(recording, tmp_path / "run.npz"))
        np.testing.assert_array_equal(
            loaded.first_touch_epoch, recording.first_touch_epoch
        )
        for a, b in zip(loaded.epochs, recording.epochs):
            np.testing.assert_array_equal(a.profile.abit, b.profile.abit)
            np.testing.assert_array_equal(a.profile.trace, b.profile.trace)
            np.testing.assert_array_equal(a.counts, b.counts)
            np.testing.assert_array_equal(a.mem_counts, b.mem_counts)
            np.testing.assert_array_equal(a.dirty_pages, b.dirty_pages)
            assert a.overhead_s == b.overhead_s

    def test_samples_roundtrip(self, recording, tmp_path):
        loaded = load_recorded(save_recorded(recording, tmp_path / "run.npz"))
        for a, b in zip(loaded.epochs, recording.epochs):
            assert a.samples.n == b.samples.n
            np.testing.assert_array_equal(a.samples.op_idx, b.samples.op_idx)
            np.testing.assert_array_equal(a.samples.paddr, b.samples.paddr)

    def test_without_samples(self, recording, tmp_path):
        p = save_recorded(recording, tmp_path / "slim.npz", include_samples=False)
        loaded = load_recorded(p)
        assert all(e.samples is None for e in loaded.epochs)

    def test_evaluation_identical_after_reload(self, recording, tmp_path):
        loaded = load_recorded(save_recorded(recording, tmp_path / "run.npz"))
        a = evaluate_recorded(recording, HistoryPolicy(), tier1_ratio=1 / 16)
        b = evaluate_recorded(loaded, HistoryPolicy(), tier1_ratio=1 / 16)
        assert a.mean_hitrate == b.mean_hitrate
        assert a.total_migrations == b.total_migrations

    def test_event_totals_roundtrip(self, recording, tmp_path):
        # Machine counters arrive as numpy integers; the header must
        # round-trip them as plain ints with identical values.
        recording.event_totals["np_counter"] = np.int64(12345)
        try:
            loaded = load_recorded(save_recorded(recording, tmp_path / "run.npz"))
        finally:
            del recording.event_totals["np_counter"]
        assert loaded.event_totals["np_counter"] == 12345
        assert all(type(v) is int for v in loaded.event_totals.values())

    def test_empty_event_totals(self, recording, tmp_path):
        slim = save_recorded(
            type(recording)(
                workload=recording.workload,
                footprint_pages=recording.footprint_pages,
                n_frames=recording.n_frames,
                first_touch_epoch=recording.first_touch_epoch,
                first_touch_op=recording.first_touch_op,
                epochs=recording.epochs,
                event_totals={},
            ),
            tmp_path / "empty.npz",
        )
        assert load_recorded(slim).event_totals == {}

    def test_samples_none_epochs_roundtrip(self, recording, tmp_path):
        # Recordings whose epochs carry no drained samples (the cache's
        # slim mode, or samplers disabled) must survive save/load even
        # with include_samples=True.
        import dataclasses

        stripped = type(recording)(
            workload=recording.workload,
            footprint_pages=recording.footprint_pages,
            n_frames=recording.n_frames,
            first_touch_epoch=recording.first_touch_epoch,
            first_touch_op=recording.first_touch_op,
            epochs=[
                dataclasses.replace(e, samples=None) for e in recording.epochs
            ],
            event_totals=recording.event_totals,
        )
        loaded = load_recorded(
            save_recorded(stripped, tmp_path / "nosamples.npz")
        )
        assert loaded.n_epochs == recording.n_epochs
        assert all(e.samples is None for e in loaded.epochs)
        np.testing.assert_array_equal(
            loaded.epochs[0].counts, recording.epochs[0].counts
        )

    def test_format_version_exported_and_written(self, recording, tmp_path):
        import json

        from repro.tiering.serialize import _FORMAT_VERSION, FORMAT_VERSION

        assert FORMAT_VERSION == _FORMAT_VERSION
        p = save_recorded(recording, tmp_path / "run.npz")
        with np.load(p) as data:
            meta = json.loads(bytes(data["_meta"]).decode())
        assert meta["format_version"] == FORMAT_VERSION

    def test_bad_version_rejected(self, recording, tmp_path):
        import json

        p = save_recorded(recording, tmp_path / "run.npz")
        with np.load(p) as data:
            arrays = {k: data[k] for k in data.files if k != "_meta"}
            meta = json.loads(bytes(data["_meta"]).decode())
        meta["format_version"] = 999
        np.savez_compressed(
            tmp_path / "bad.npz",
            _meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        with pytest.raises(ValueError, match="format"):
            load_recorded(tmp_path / "bad.npz")
