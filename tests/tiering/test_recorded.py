"""Tests for record-once / evaluate-offline (the Fig. 6 method)."""

import numpy as np
import pytest

from repro.memsim import MachineConfig
from repro.workloads import make_workload
from repro.tiering import (
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    TieredSimulator,
    evaluate_recorded,
    record_run,
)


def _record(wname="data-caching", epochs=4, **kw):
    defaults = dict(
        machine_config=MachineConfig.scaled(ibs_period=16),
        seed=0,
    )
    defaults.update(kw)
    w = make_workload(wname, accesses_per_epoch=60_000)
    return record_run(w, epochs=epochs, **defaults)


class TestRecordRun:
    def test_shape(self):
        rec = _record(epochs=3)
        assert rec.n_epochs == 3
        assert rec.workload == "data-caching"
        for r in rec.epochs:
            assert r.counts.size == rec.n_frames
            assert r.mem_counts.size == rec.n_frames
            assert (r.mem_counts <= r.counts).all()

    def test_first_touch_epochs(self):
        rec = _record(epochs=3)
        # With an init phase, the bulk of frames are touched at init (-1).
        assert (rec.first_touch_epoch == -1).sum() > 0.5 * rec.n_frames
        assert rec.first_touch_epoch.max() <= 3

    def test_profiles_nonempty(self):
        rec = _record(epochs=3)
        for r in rec.epochs:
            assert r.profile.abit.sum() > 0
            assert r.profile.trace.sum() > 0

    def test_deterministic(self):
        a, b = _record(epochs=2), _record(epochs=2)
        np.testing.assert_array_equal(a.epochs[1].counts, b.epochs[1].counts)
        np.testing.assert_array_equal(a.epochs[1].profile.trace, b.epochs[1].profile.trace)

    def test_bad_slices(self):
        w = make_workload("gups", accesses_per_epoch=1000)
        with pytest.raises(ValueError):
            record_run(w, epoch_slices=0)

    def test_slices_give_graded_abit(self):
        rec = _record(epochs=2, epoch_slices=4)
        assert rec.epochs[1].profile.abit.max() > 1


class TestEvaluateRecorded:
    def test_matches_online_simulator_hitrate(self):
        """Offline evaluation reproduces the online loop's hitrates
        (the only feedback difference is migration-induced TLB state,
        which FCFA — migration-free — does not have at all)."""
        rec = _record(epochs=4)
        offline = evaluate_recorded(rec, FCFAPolicy(), tier1_ratio=1 / 16)

        w = make_workload("data-caching", accesses_per_epoch=60_000)
        online = TieredSimulator(
            w,
            FCFAPolicy(),
            tier1_ratio=1 / 16,
            machine_config=MachineConfig.scaled(ibs_period=16),
            seed=0,
        ).run(4)
        assert offline.mean_hitrate == pytest.approx(online.mean_hitrate, abs=1e-9)

    def test_history_offline_close_to_online(self):
        rec = _record(epochs=4)
        offline = evaluate_recorded(rec, HistoryPolicy(), tier1_ratio=1 / 16)
        w = make_workload("data-caching", accesses_per_epoch=60_000)
        online = TieredSimulator(
            w,
            HistoryPolicy(),
            tier1_ratio=1 / 16,
            machine_config=MachineConfig.scaled(ibs_period=16),
            seed=0,
        ).run(4)
        assert offline.mean_hitrate == pytest.approx(online.mean_hitrate, abs=0.05)

    def test_many_configs_one_recording(self):
        rec = _record(epochs=3)
        results = [
            evaluate_recorded(rec, HistoryPolicy(), tier1_ratio=r, rank_source=s)
            for r in (1 / 8, 1 / 32)
            for s in ("abit", "trace", "combined")
        ]
        assert len({(x.tier1_ratio, x.rank_source) for x in results}) == 6

    def test_hitrate_monotone_in_ratio(self):
        rec = _record(epochs=3)
        small = evaluate_recorded(rec, OraclePolicy(), tier1_ratio=1 / 64)
        big = evaluate_recorded(rec, OraclePolicy(), tier1_ratio=1 / 4)
        assert big.mean_hitrate > small.mean_hitrate

    def test_bad_ratio(self):
        rec = _record(epochs=1)
        with pytest.raises(ValueError):
            evaluate_recorded(rec, FCFAPolicy(), tier1_ratio=0)

    def test_latency_recorded(self):
        rec = _record(epochs=2)
        res = evaluate_recorded(rec, HistoryPolicy(), tier1_ratio=1 / 16)
        for e in res.epochs:
            assert e.latency.total_s >= 1.0  # base epoch second
