"""Property-based invariants for tier placement and migration."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiering import TIER1, TIER2, UNPLACED, PageMover, make_tiers

N_FRAMES = 64


@st.composite
def target_sequences(draw):
    cap = draw(st.integers(1, 16))
    n_targets = draw(st.integers(1, 6))
    targets = []
    for _ in range(n_targets):
        pages = draw(
            st.lists(
                st.integers(0, N_FRAMES - 1), min_size=0, max_size=32, unique=True
            )
        )
        targets.append(np.asarray(pages, dtype=np.int64))
    budget = draw(st.one_of(st.none(), st.integers(0, 20)))
    return cap, targets, budget


class TestMoverInvariants:
    @given(target_sequences())
    @settings(max_examples=150, deadline=None)
    def test_capacity_and_conservation(self, plan):
        cap, targets, budget = plan
        tm = make_tiers(N_FRAMES, cap)
        tm.place(np.arange(N_FRAMES), TIER2)
        mover = PageMover(tm, max_moves_per_epoch=budget)
        for target in targets:
            res = mover.apply_target(target)
            # Capacity never exceeded.
            assert tm.occupancy(TIER1) <= cap
            # No page ever becomes unplaced again.
            assert tm.occupancy(UNPLACED) == 0
            assert tm.occupancy(TIER1) + tm.occupancy(TIER2) == N_FRAMES
            # Reported moves are consistent and budget-respecting.
            assert res.promoted >= 0 and res.demoted >= 0
            if budget is not None:
                assert res.promoted <= max(budget // 2, 0)
            # Tier-1 contents are a subset of the target when the target
            # was large enough (unbudgeted case).
            if budget is None and target.size >= cap:
                t1 = set(tm.tier1_pages().tolist())
                assert t1 <= set(target[:cap].tolist()) | t1  # tautology guard
                assert t1 <= set(target.tolist())

    @given(target_sequences())
    @settings(max_examples=80, deadline=None)
    def test_idempotent_targets(self, plan):
        cap, targets, _ = plan
        tm = make_tiers(N_FRAMES, cap)
        tm.place(np.arange(N_FRAMES), TIER2)
        mover = PageMover(tm)
        for target in targets:
            mover.apply_target(target)
            placement = tm.tier_of.copy()
            res = mover.apply_target(target)  # same target again
            assert res.moved == 0
            np.testing.assert_array_equal(tm.tier_of, placement)

    @given(target_sequences())
    @settings(max_examples=80, deadline=None)
    def test_promotions_match_demotions_when_full(self, plan):
        cap, targets, _ = plan
        tm = make_tiers(N_FRAMES, cap)
        tm.place(np.arange(N_FRAMES), TIER2)
        mover = PageMover(tm)
        # Fill tier 1 completely first.
        mover.apply_target(np.arange(cap, dtype=np.int64))
        for target in targets:
            before = tm.occupancy(TIER1)
            res = mover.apply_target(target)
            after = tm.occupancy(TIER1)
            assert after - before == res.promoted - res.demoted
