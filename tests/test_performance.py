"""Performance smoke tests — guard the vectorized hot paths.

These are not micro-benchmarks (benchmarks/ has those); they assert
order-of-magnitude throughput floors so an accidental Python-loop
regression in a hot path fails CI instead of silently making every
experiment 100x slower.  Floors are set ~5x below observed throughput
on a modest machine.
"""

import time

import numpy as np
import pytest

from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.memsim.vecsim import VectorDirectMapped


def _throughput(fn, n_items, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n_items / best


class TestThroughputFloors:
    def test_machine_pipeline(self):
        m = Machine(MachineConfig.scaled())
        vma = m.mmap(1, 4096)
        rng = np.random.default_rng(0)
        batch = AccessBatch.from_pages(rng.choice(vma.vpns, 200_000), pid=1)
        rate = _throughput(lambda: m.run_batch(batch), batch.n)
        assert rate > 300_000, f"machine pipeline at {rate:.0f} accesses/s"

    def test_vector_engine(self):
        e = VectorDirectMapped(1 << 14)
        keys = np.random.default_rng(0).integers(0, 1 << 16, 500_000).astype(np.uint64)
        rate = _throughput(lambda: e.access(keys), keys.size)
        assert rate > 2_000_000, f"vector engine at {rate:.0f} keys/s"

    def test_workload_generation(self):
        from repro.workloads import make_workload

        m = Machine(MachineConfig.scaled())
        w = make_workload("data-caching")
        w.attach(m)
        rng = np.random.default_rng(0)
        rate = _throughput(lambda: w.epoch(0, rng), w.accesses_per_epoch)
        assert rate > 500_000, f"workload generation at {rate:.0f} accesses/s"

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_batches_no_pathology(self, n):
        # Fixed overhead per batch must stay tiny (epoch slicing relies
        # on it).
        m = Machine(MachineConfig.scaled())
        vma = m.mmap(1, 16)
        batch = AccessBatch.from_pages(vma.vpns[:n], pid=1)
        t0 = time.perf_counter()
        for _ in range(100):
            m.run_batch(batch)
        assert time.perf_counter() - t0 < 1.0
