"""Performance smoke tests — guard the vectorized hot paths.

These are not micro-benchmarks (benchmarks/ has those); they assert
order-of-magnitude throughput floors so an accidental Python-loop
regression in a hot path fails CI instead of silently making every
experiment 100x slower.  Floors are set ~5x below observed throughput
on a modest machine.
"""

import os
import sys
import time

import numpy as np
import pytest

from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.memsim.vecsim import VectorDirectMapped


def _load_bench(name):
    import importlib.util
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        name, root / "benchmarks" / f"{name}.py"
    )
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    return bench


def _load_bench_service():
    return _load_bench("bench_service")


def _throughput(fn, n_items, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n_items / best


class TestThroughputFloors:
    def test_machine_pipeline(self):
        m = Machine(MachineConfig.scaled())
        vma = m.mmap(1, 4096)
        rng = np.random.default_rng(0)
        batch = AccessBatch.from_pages(rng.choice(vma.vpns, 200_000), pid=1)
        rate = _throughput(lambda: m.run_batch(batch), batch.n)
        assert rate > 300_000, f"machine pipeline at {rate:.0f} accesses/s"

    def test_vector_engine(self):
        e = VectorDirectMapped(1 << 14)
        keys = np.random.default_rng(0).integers(0, 1 << 16, 500_000).astype(np.uint64)
        rate = _throughput(lambda: e.access(keys), keys.size)
        assert rate > 2_000_000, f"vector engine at {rate:.0f} keys/s"

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="perf floor needs >= 2 cores"
    )
    @pytest.mark.skipif(
        "coverage" in sys.modules, reason="coverage tracing skews the ratio"
    )
    def test_vector_set_assoc_speedup_floor(self):
        # Acceptance: the vectorized exact-LRU engine clears 3x over
        # the scalar reference on the ways=4 bench config (the full
        # benchmark records ~5-8x; 3x absorbs slow CI boxes).
        bench = _load_bench("bench_sim")
        scalar = bench.bench_engine("scalar", reference=True, **bench.WAYS4)
        vector = bench.bench_engine("vector", reference=False, **bench.WAYS4)
        speedup = vector["epochs_per_s"] / scalar["epochs_per_s"]
        assert speedup >= 3.0, (
            f"VectorSetAssoc only {speedup:.2f}x over SequentialSetAssoc "
            f"({scalar['keys_per_s']:.0f} vs {vector['keys_per_s']:.0f} keys/s)"
        )

    def test_workload_generation(self):
        from repro.workloads import make_workload

        m = Machine(MachineConfig.scaled())
        w = make_workload("data-caching")
        w.attach(m)
        rng = np.random.default_rng(0)
        rate = _throughput(lambda: w.epoch(0, rng), w.accesses_per_epoch)
        assert rate > 500_000, f"workload generation at {rate:.0f} accesses/s"

class TestRunnerThroughput:
    """Floors for the experiment runner's offline evaluation path."""

    def test_recorded_sweep_throughput(self):
        # The hot-set memo plus vectorized evaluation must keep offline
        # scoring far cheaper than recording: floor ~10x under observed.
        from repro.analysis.hitrate import sweep_recorded
        from repro.tiering import record_run
        from repro.workloads import make_workload

        rec = record_run(
            make_workload("web-serving", accesses_per_epoch=40_000),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=4,
            seed=0,
        )
        n_cells = [0]

        def sweep():
            n_cells[0] = len(sweep_recorded(rec, jobs=1))

        rate = _throughput(sweep, 1)
        cells_per_s = n_cells[0] * rate
        assert cells_per_s > 40, f"offline sweep at {cells_per_s:.0f} cells/s"

    def test_cache_hit_faster_than_recording(self, tmp_path):
        # A warm cache must make the recording stage nearly free.
        from repro.runner import RecordSpec, RunCache, cache_key

        spec = RecordSpec(
            "web-serving",
            workload_kw={"accesses_per_epoch": 40_000},
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=4,
        )
        cache = RunCache(tmp_path)
        t0 = time.perf_counter()
        cache.put(cache_key(spec), spec.record())
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert cache.get(cache_key(spec)) is not None
        warm_s = time.perf_counter() - t0
        assert warm_s < cold_s / 2, f"cache hit {warm_s:.3f}s vs record {cold_s:.3f}s"

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="parallel speedup floor needs >= 4 cores"
    )
    def test_parallel_sweep_speedup(self, tmp_path):
        # Acceptance: cold fig6 sweep with jobs=4 is >= 2x faster than
        # jobs=1 on a 4-core runner, with an identical grid.
        from repro.analysis.hitrate import fig6_sweep

        kw = dict(epochs=4, ratios=(1 / 8, 1 / 32, 1 / 128))
        names = ["web-serving", "graph500", "gups", "data-caching"]
        t0 = time.perf_counter()
        serial = fig6_sweep(names, jobs=1, **kw)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = fig6_sweep(names, jobs=4, **kw)
        parallel_s = time.perf_counter() - t0
        assert serial == parallel
        assert serial_s / parallel_s >= 2.0, (
            f"jobs=4 speedup only {serial_s / parallel_s:.2f}x "
            f"({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="service speedup floor needs >= 4 cores"
    )
    def test_service_worker_pool_speedup(self):
        # Acceptance: 8 concurrent sessions through a 4-worker pool
        # step >= 2.5x faster than the GIL-bound in-process path.
        bench = _load_bench_service()
        report = bench.run(workers_list=(0, 4))
        assert report["speedup"] >= 2.5, (
            f"workers=4 speedup only {report['speedup']:.2f}x "
            f"({report['scenarios']})"
        )

    def test_metrics_instrumentation_overhead_under_3_percent(self):
        # Acceptance: repro.obs instrumentation costs < 3% on an
        # 8-session stepped run vs the same run with metrics disabled.
        # Individual runs jitter 10-30% around a sub-1% true cost, so
        # the benchmark scores the min of two noise-robust estimators
        # (CPU-time floor ratio and median per-pair ratio) — a real
        # regression moves both, noise rarely moves both at once.
        bench = _load_bench_service()
        report = bench.run_metrics_overhead(sessions=8, epochs=24, repeats=8)
        assert report["overhead_fraction"] < 0.03, (
            f"metrics overhead {report['overhead_fraction']:.2%} "
            f"(floor {report['floor_fraction']:.2%}, "
            f"per-pair median {report['pair_fraction']:.2%})"
        )

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="perf floor needs >= 2 cores"
    )
    @pytest.mark.skipif(
        "coverage" in sys.modules, reason="coverage tracing skews the ratio"
    )
    def test_fanout_serialize_once_speedup_floor(self):
        # Acceptance: at 16 subscribers per session, encoding the
        # payload once and splicing per-subscriber envelopes clears 3x
        # over the old encode-per-subscriber fan-out (the benchmark
        # records ~5x; 3x absorbs slow CI boxes).  Scored min-of-5 on
        # CPU time, so wall-clock noise doesn't move it.
        bench = _load_bench_service()
        kernel = bench.run_fanout_kernel()
        assert kernel["speedup"] >= 3.0, (
            f"serialize-once fan-out only {kernel['speedup']:.2f}x over "
            f"encode-per-subscriber ({kernel['legacy_frames_per_s']:.0f} "
            f"vs {kernel['spliced_frames_per_s']:.0f} frames/s)"
        )

    def test_ledger_overhead_under_5_percent(self):
        # Acceptance: persisting every epoch frame to the telemetry
        # ledger (default fsync="rotate") costs < 5% step throughput
        # on an 8-session stepped run vs the same run without a
        # ledger.  Same two-estimator noise defence as the metrics
        # overhead guard above.
        bench = _load_bench_service()
        report = bench.run_ledger_overhead(sessions=8, epochs=24, repeats=8)
        assert report["overhead_fraction"] < 0.05, (
            f"ledger overhead {report['overhead_fraction']:.2%} "
            f"(floor {report['floor_fraction']:.2%}, "
            f"per-pair median {report['pair_fraction']:.2%})"
        )


class TestTinyBatches:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_batches_no_pathology(self, n):
        # Fixed overhead per batch must stay tiny (epoch slicing relies
        # on it).
        m = Machine(MachineConfig.scaled())
        vma = m.mmap(1, 16)
        batch = AccessBatch.from_pages(vma.vpns[:n], pid=1)
        t0 = time.perf_counter()
        for _ in range(100):
            m.run_batch(batch)
        assert time.perf_counter() - t0 < 1.0
