"""Tests for the population (init) phase of workloads."""

import numpy as np
import pytest

from repro.memsim import Machine, MachineConfig
from repro.workloads import WORKLOAD_NAMES, make_workload


def _machine():
    return Machine(MachineConfig.scaled())


class TestInitStream:
    def test_requires_attach(self):
        w = make_workload("gups")
        with pytest.raises(RuntimeError, match="not attached"):
            w.init_stream(np.random.default_rng(0))

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_touches_every_frame(self, name):
        m = _machine()
        w = make_workload(name)
        w.attach(m)
        m.run_batch(w.init_stream(np.random.default_rng(0)))
        assert m.frame_stats.touched_mask().all()

    def test_all_stores(self):
        m = _machine()
        w = make_workload("gups")
        w.attach(m)
        b = w.init_stream(np.random.default_rng(0))
        assert b.is_store.all()

    def test_dwell_controls_size(self):
        m = _machine()
        w = make_workload("graph500")
        w.attach(m)
        rng = np.random.default_rng(0)
        small = w.init_stream(rng, dwell=1).n
        big = w.init_stream(np.random.default_rng(0), dwell=4).n
        assert big == 4 * small

    def test_first_touch_order_is_hotness_blind(self):
        """Within each VMA, init first-touch order is address order —
        no correlation with future access frequency."""
        m = _machine()
        w = make_workload("data-caching")
        w.attach(m)
        m.run_batch(w.init_stream(np.random.default_rng(0)))
        server = w.processes[0]
        vma = server.vma("values")
        ft = m.frame_stats.first_touch_op[vma.pfn_base : vma.pfn_base + vma.npages]
        assert (np.diff(ft.astype(np.int64)) > 0).all()


class TestScaledConfigInvariants:
    def test_ratios_match_full_size(self):
        full = MachineConfig()
        scaled = MachineConfig.scaled()
        # TLB reach : LLC pages ratio is preserved (both shrink 8x/32x
        # relative structure maintained within 2x).
        full_ratio = (full.llc_bytes / 4096) / full.tlb_entries
        scaled_ratio = (scaled.llc_bytes / 4096) / scaled.tlb_entries
        assert scaled_ratio == pytest.approx(full_ratio, rel=1.0)
        # Samples per second are preserved to within the nearest
        # power-of-two period choice (3815/s full vs 3125/s scaled).
        assert full.ops_per_second / full.ibs_period == pytest.approx(
            scaled.ops_per_second / scaled.ibs_period, rel=0.25
        )

    def test_overrides(self):
        cfg = MachineConfig.scaled(ibs_period=16, n_cpus=2)
        assert cfg.ibs_period == 16
        assert cfg.n_cpus == 2
        assert cfg.tlb_entries == 256  # preset retained
