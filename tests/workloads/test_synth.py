"""Unit and property tests for synthetic pattern primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import Machine, MachineConfig
from repro.workloads.synth import (
    BoundedZipf,
    batch_on_vma,
    rmw_expand,
    sequential_sweep,
    strided_sweep,
    uniform_pages,
    windowed_sweep,
)


class TestBoundedZipf:
    def test_samples_in_range(self):
        z = BoundedZipf(100, alpha=1.0)
        s = z.sample(np.random.default_rng(0), 10_000)
        assert s.min() >= 0 and s.max() < 100

    def test_rank_zero_hottest(self):
        z = BoundedZipf(100, alpha=1.2)
        ranks = z.sample_ranks(np.random.default_rng(0), 50_000)
        counts = np.bincount(ranks, minlength=100)
        assert counts[0] == counts.max()
        # Top rank dominates the tail decisively.
        assert counts[0] > 5 * counts[50]

    def test_alpha_zero_uniform(self):
        z = BoundedZipf(10, alpha=0.0)
        ranks = z.sample_ranks(np.random.default_rng(0), 100_000)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_permutation_scatters_hot_page(self):
        rng = np.random.default_rng(5)
        z = BoundedZipf(1000, alpha=1.5, perm_rng=rng)
        s = z.sample(np.random.default_rng(0), 10_000)
        hot = np.bincount(s, minlength=1000).argmax()
        assert hot != 0  # overwhelmingly likely after permutation

    def test_hot_fraction_pages(self):
        z = BoundedZipf(1000, alpha=1.2)
        k = z.hot_fraction_pages(0.5)
        assert 1 <= k < 1000
        # Heavier skew → smaller hot set for the same mass.
        k2 = BoundedZipf(1000, alpha=2.0).hot_fraction_pages(0.5)
        assert k2 <= k

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BoundedZipf(0)
        with pytest.raises(ValueError):
            BoundedZipf(10, alpha=-1)

    @given(
        n=st.integers(1, 500),
        alpha=st.floats(0.0, 3.0, allow_nan=False),
        size=st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_range_and_shape(self, n, alpha, size):
        z = BoundedZipf(n, alpha=alpha)
        s = z.sample(np.random.default_rng(1), size)
        assert s.shape == (size,)
        if size:
            assert s.min() >= 0 and s.max() < n


class TestSweeps:
    def test_sequential_short(self):
        np.testing.assert_array_equal(sequential_sweep(10, 4), [0, 1, 2, 3])

    def test_sequential_start_wraps(self):
        np.testing.assert_array_equal(sequential_sweep(4, 4, start=2), [2, 3, 0, 1])

    def test_sequential_with_dwell(self):
        out = sequential_sweep(3, 7)
        assert out.size == 7
        assert set(out) <= {0, 1, 2}
        # Non-decreasing page order within dwell region.
        assert (np.diff(out[:6]) >= 0).all()

    def test_windowed_dwell_exact(self):
        out = windowed_sweep(100, 8, dwell=4)
        np.testing.assert_array_equal(out, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_windowed_start_and_wrap(self):
        out = windowed_sweep(4, 8, dwell=2, start=3)
        np.testing.assert_array_equal(out, [3, 3, 0, 0, 1, 1, 2, 2])

    def test_windowed_pads_remainder(self):
        out = windowed_sweep(100, 7, dwell=3)
        assert out.size == 7
        np.testing.assert_array_equal(out, [0, 0, 0, 1, 1, 1, 1])

    def test_windowed_tlb_miss_bound(self):
        out = windowed_sweep(1000, 800, dwell=8)
        transitions = int(np.count_nonzero(np.diff(out))) + 1
        assert transitions == 100  # 1-in-8 accesses changes page

    def test_strided(self):
        np.testing.assert_array_equal(strided_sweep(10, 4, 3), [0, 3, 6, 9])
        np.testing.assert_array_equal(strided_sweep(10, 4, 3, start=5), [5, 8, 1, 4])

    def test_bad_params(self):
        with pytest.raises(ValueError):
            sequential_sweep(0, 5)
        with pytest.raises(ValueError):
            strided_sweep(10, 5, 0)
        with pytest.raises(ValueError):
            windowed_sweep(10, 5, 0)


class TestUniformPages:
    def test_range(self):
        s = uniform_pages(np.random.default_rng(0), 50, 1000)
        assert s.min() >= 0 and s.max() < 50

    def test_covers_space(self):
        s = uniform_pages(np.random.default_rng(0), 20, 2000)
        assert np.unique(s).size == 20


class TestRmwExpand:
    def test_load_store_pairs(self):
        pages, is_store = rmw_expand(np.array([5, 9]), np.random.default_rng(0))
        np.testing.assert_array_equal(pages, [5, 5, 9, 9])
        np.testing.assert_array_equal(is_store, [False, True, False, True])

    def test_store_fraction_zero(self):
        _, is_store = rmw_expand(np.arange(100), np.random.default_rng(0), 0.0)
        assert not is_store.any()

    def test_store_fraction_partial(self):
        _, is_store = rmw_expand(np.arange(10_000), np.random.default_rng(0), 0.5)
        assert is_store[::2].sum() == 0
        assert 0.4 < is_store[1::2].mean() < 0.6


class TestBatchOnVMA:
    def _vma(self):
        m = Machine(MachineConfig(total_frames=1 << 12))
        return m.mmap(1, 16)

    def test_builds_in_region_addresses(self):
        vma = self._vma()
        b = batch_on_vma(vma, np.array([0, 15]), pid=1)
        np.testing.assert_array_equal(b.vaddr >> 12, [vma.start_vpn, vma.end_vpn - 1])

    def test_out_of_range_rejected(self):
        vma = self._vma()
        with pytest.raises(ValueError, match="out of range"):
            batch_on_vma(vma, np.array([16]), pid=1)
        with pytest.raises(ValueError, match="out of range"):
            batch_on_vma(vma, np.array([-1]), pid=1)

    def test_line_offsets_random_but_aligned(self):
        vma = self._vma()
        b = batch_on_vma(vma, np.zeros(256, dtype=np.int64), pid=1, rng=np.random.default_rng(0))
        offs = b.vaddr & np.uint64(0xFFF)
        assert (offs % 64 == 0).all()
        assert np.unique(offs).size > 10  # actually randomized

    def test_ip_tag(self):
        vma = self._vma()
        b = batch_on_vma(vma, np.array([1]), pid=1, ip=0xDEAD)
        assert b.ip[0] == 0xDEAD
