"""Per-workload behavioural tests for the Table III suite."""

import numpy as np
import pytest

from repro.memsim import Machine, MachineConfig
from repro.workloads import (
    WORKLOAD_NAMES,
    DataCaching,
    Graph500,
    GUPS,
    WebServing,
    XSBench,
    make_workload,
    paper_suite,
)


def _machine():
    return Machine(MachineConfig.scaled())


def _run_epochs(name, n_epochs=2, seed=0, **kw):
    m = _machine()
    w = make_workload(name, **kw)
    w.attach(m)
    rng = np.random.default_rng(seed)
    results = [m.run_batch(w.epoch(e, rng)) for e in range(n_epochs)]
    return m, w, results


class TestRegistry:
    def test_all_eight_present(self):
        assert len(WORKLOAD_NAMES) == 8
        assert set(WORKLOAD_NAMES) == {
            "data-analytics",
            "data-caching",
            "graph500",
            "graph-analytics",
            "gups",
            "lulesh",
            "web-serving",
            "xsbench",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope")

    def test_paper_suite_instantiates(self):
        suite = paper_suite(scale=0.1)
        assert set(suite) == set(WORKLOAD_NAMES)

    def test_scale_shrinks_footprint(self):
        big = make_workload("gups", scale=1.0)
        small = make_workload("gups", scale=0.1)
        assert small.footprint_pages < big.footprint_pages

    def test_scale_floor(self):
        tiny = make_workload("graph500", scale=1e-9)
        assert tiny.footprint_pages >= 256


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEveryWorkload:
    def test_executes_two_epochs(self, name):
        _, _, results = _run_epochs(name)
        assert all(r.n > 0 for r in results)

    def test_deterministic(self, name):
        _, _, r1 = _run_epochs(name, seed=7)
        _, _, r2 = _run_epochs(name, seed=7)
        np.testing.assert_array_equal(r1[0].pfn, r2[0].pfn)
        np.testing.assert_array_equal(r1[1].tlb_hit, r2[1].tlb_hit)

    def test_paper_process_counts(self, name):
        expected = {
            "data-analytics": 33,
            "data-caching": 12,
            "graph500": 8,
            "graph-analytics": 17,
            "gups": 8,
            "lulesh": 8,
            "web-serving": 15,
            "xsbench": 8,
        }
        w = make_workload(name)
        assert w.n_processes == expected[name]


class TestGUPSCharacter:
    def test_sparse_random_updates(self):
        m, w, results = _run_epochs("gups")
        r = results[1]
        # GUPS: high TLB miss rate even warm, high memory fraction.
        assert (1 - r.tlb_hit.mean()) > 0.3
        assert r.mem_mask.mean() > 0.7

    def test_rmw_store_fraction(self):
        _, w, _ = _run_epochs("gups")
        m2 = _machine()
        w2 = GUPS()
        w2.attach(m2)
        b = w2.epoch(0, np.random.default_rng(0))
        # ~45% stores (RMW pairs on 90% of accesses).
        assert 0.35 < b.is_store.mean() < 0.55

    def test_wide_page_coverage(self):
        m, w, results = _run_epochs("gups")
        touched = int(m.frame_stats.touched_mask().sum())
        assert touched > 0.8 * w.footprint_pages


class TestXSBenchCharacter:
    def test_thin_huge_footprint(self):
        m, w, results = _run_epochs("xsbench")
        counts = m.frame_stats.access_count
        touched = counts[counts > 0]
        # Footprint dwarfs per-epoch touches; per-page counts stay tiny.
        assert np.median(touched) <= 8

    def test_highest_tlb_hostility(self):
        _, _, r_xs = _run_epochs("xsbench")
        _, _, r_ws = _run_epochs("web-serving")
        assert (1 - r_xs[1].tlb_hit.mean()) > 3 * (1 - r_ws[1].tlb_hit.mean())


class TestWebServingCharacter:
    def test_low_memory_intensity(self):
        _, _, results = _run_epochs("web-serving")
        assert results[1].mem_mask.mean() < 0.6

    def test_load_wave_intensity_varies(self):
        m = _machine()
        w = WebServing()
        w.attach(m)
        rng = np.random.default_rng(0)
        sizes = [w.epoch(e, rng).n for e in range(5)]
        assert max(sizes) > 3 * min(sizes)

    def test_session_churn_touches_fresh_pages(self):
        m = _machine()
        w = WebServing()
        w.attach(m)
        rng = np.random.default_rng(0)
        m.run_batch(w.epoch(0, rng))
        before = m.frame_stats.touched_mask().sum()
        m.run_batch(w.epoch(1, rng))
        after = m.frame_stats.touched_mask().sum()
        assert after > before  # new session pages every epoch


class TestGraph500Character:
    def test_bfs_wave_intensity(self):
        m = _machine()
        w = Graph500()
        w.attach(m)
        rng = np.random.default_rng(0)
        sizes = [w.epoch(e, rng).n for e in range(5)]
        assert max(sizes) > 5 * min(sizes)

    def test_power_law_edge_popularity(self):
        m, w, _ = _run_epochs("graph500", n_epochs=3)
        counts = np.sort(m.frame_stats.access_count)[::-1]
        top = counts[: max(1, counts.size // 100)].sum()
        assert top > 0.05 * counts.sum()


class TestDataCachingCharacter:
    def test_zipf_hot_head(self):
        m, w, _ = _run_epochs("data-caching", n_epochs=3)
        counts = m.frame_stats.access_count
        touched = counts[counts > 0]
        # Zipf: the hottest 10% of touched pages carry most accesses.
        s = np.sort(touched)[::-1]
        top10 = s[: max(1, s.size // 10)].sum()
        assert top10 > 0.4 * touched.sum()

    def test_set_fraction_writes(self):
        m2 = _machine()
        w2 = DataCaching()
        w2.attach(m2)
        b = w2.epoch(0, np.random.default_rng(0))
        assert 0.01 < b.is_store.mean() < 0.15


class TestLULESHCharacter:
    def test_sweep_locality(self):
        _, _, results = _run_epochs("lulesh")
        # Dwell-8 sweeps: TLB miss rate far below GUPS.
        assert (1 - results[1].tlb_hit.mean()) < 0.4

    def test_moving_window(self):
        m, w, _ = _run_epochs("lulesh", n_epochs=4)
        # Multiple epochs touch an expanding set of frames.
        assert m.frame_stats.touched_mask().sum() > 0.1 * w.footprint_pages


class TestDataAnalyticsCharacter:
    def test_hot_model_reuse(self):
        m, w, _ = _run_epochs("data-analytics", n_epochs=2)
        counts = m.frame_stats.access_count
        # Model pages are orders hotter than the scan tail.
        s = np.sort(counts[counts > 0])[::-1]
        assert s[0] > 20 * np.median(s)


class TestGraphAnalyticsCharacter:
    def test_epoch_stability_for_history_policy(self):
        m = _machine()
        w = make_workload("graph-analytics")
        w.attach(m)
        rng = np.random.default_rng(0)
        r1 = m.run_batch(w.epoch(0, rng))
        c1 = r1.page_access_counts(m.n_frames)
        r2 = m.run_batch(w.epoch(1, rng))
        c2 = r2.page_access_counts(m.n_frames)
        # Hot sets overlap heavily between successive epochs.
        k = max(1, m.n_frames // 20)
        hot1 = set(np.argsort(c1)[-k:])
        hot2 = set(np.argsort(c2)[-k:])
        assert len(hot1 & hot2) > 0.5 * k
