"""Tests for workload colocation (MultiWorkload)."""

import numpy as np
import pytest

from repro.core import TMPConfig, TMProfiler
from repro.memsim import Machine, MachineConfig
from repro.tiering import HistoryPolicy, TieredSimulator
from repro.workloads import MultiWorkload, make_workload


def _mix(names=("web-serving", "gups"), **kw):
    return MultiWorkload([make_workload(n, **kw) for n in names])


def _machine():
    return Machine(MachineConfig.scaled(ibs_period=16))


class TestComposition:
    def test_name_and_totals(self):
        mix = _mix()
        ws, gups = mix.tenants
        assert mix.name == "web-serving+gups"
        assert mix.footprint_pages == ws.footprint_pages + gups.footprint_pages
        assert mix.n_processes == ws.n_processes + gups.n_processes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiWorkload([])

    def test_pid_ranges_disjoint(self):
        mix = _mix(("gups", "gups", "gups"))
        mix.attach(_machine())
        all_pids = [pid for t in mix.tenants for pid in t.pids]
        assert len(set(all_pids)) == len(all_pids)

    def test_attach_maps_every_tenant(self):
        mix = _mix()
        m = _machine()
        mix.attach(m)
        assert set(mix.pids) == set(m.page_tables)
        assert m.n_frames > 0

    def test_double_attach_rejected(self):
        mix = _mix()
        m = _machine()
        mix.attach(m)
        with pytest.raises(RuntimeError):
            mix.attach(m)

    def test_tenant_pids_mapping(self):
        mix = _mix()
        mix.attach(_machine())
        groups = mix.tenant_pids()
        assert set(groups) == {"web-serving", "gups"}
        assert groups["gups"] == mix.tenants[1].pids


class TestExecution:
    def test_epoch_contains_all_tenants(self):
        mix = _mix()
        m = _machine()
        mix.attach(m)
        b = mix.epoch(0, np.random.default_rng(0))
        pids = set(np.unique(b.pid))
        for t in mix.tenants:
            assert pids & set(t.pids)
        m.run_batch(b)  # executes without faults

    def test_init_stream_covers_all_frames(self):
        mix = _mix()
        m = _machine()
        mix.attach(m)
        m.run_batch(mix.init_stream(np.random.default_rng(0)))
        assert m.frame_stats.touched_mask().all()

    def test_deterministic(self):
        def run():
            m = _machine()
            mix = _mix()
            mix.attach(m)
            return m.run_batch(mix.epoch(0, np.random.default_rng(3))).pfn

        np.testing.assert_array_equal(run(), run())


class TestProfilingMix:
    def test_filter_separates_tenants(self):
        """The heavy tenant's processes are tracked; the light one's
        clients fall below the resource thresholds."""
        m = _machine()
        mix = _mix(("data-caching", "gups"))
        mix.attach(m)
        prof = TMProfiler(m, TMPConfig())
        prof.register_workload(mix)
        rng = np.random.default_rng(0)
        for e in range(2):
            b = mix.epoch(e, rng)
            prof.observe_batch(b, m.run_batch(b))
            rep = prof.end_epoch()
        tracked = set(rep.tracked_pids)
        gups_pids = set(mix.tenants[1].pids)
        # All GUPS ranks are heavy; memcached clients are filtered.
        assert gups_pids <= tracked
        assert len(tracked) < mix.n_processes

    def test_tiering_over_a_mix(self):
        mix = _mix(("web-serving", "gups"))
        sim = TieredSimulator(
            mix,
            HistoryPolicy(),
            tier1_ratio=1 / 8,
            machine_config=MachineConfig.scaled(ibs_period=16),
            seed=0,
        )
        res = sim.run(3)
        assert 0 < res.mean_hitrate < 1
        # The mix's hot set (web code + stream) earns placement: better
        # than the proportional floor.
        assert res.mean_hitrate > 1 / 8
