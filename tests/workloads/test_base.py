"""Tests for the Workload base class and interleaving."""

import numpy as np
import pytest

from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.workloads.base import Workload, interleave
from repro.workloads.synth import batch_on_vma, sequential_sweep


class _Toy(Workload):
    """Minimal workload: sequential sweep over the data VMA."""

    name = "toy"

    def _process_epoch(self, proc, epoch_idx, n_accesses, rng):
        vma = proc.vma("data")
        return batch_on_vma(
            vma, sequential_sweep(vma.npages, n_accesses), pid=proc.pid, cpu=proc.cpu
        )


def _machine():
    return Machine(MachineConfig(total_frames=1 << 16))


class TestAttach:
    def test_creates_processes_and_vmas(self):
        w = _Toy(footprint_pages=100, n_processes=4)
        w.attach(_machine())
        assert len(w.processes) == 4
        assert w.pids == [100, 101, 102, 103]
        assert all(p.vma("data").npages == 25 for p in w.processes)

    def test_double_attach_rejected(self):
        w = _Toy(footprint_pages=10)
        m = _machine()
        w.attach(m)
        with pytest.raises(RuntimeError, match="already attached"):
            w.attach(m)

    def test_epoch_before_attach_rejected(self):
        w = _Toy(footprint_pages=10)
        with pytest.raises(RuntimeError, match="not attached"):
            w.epoch(0, np.random.default_rng(0))

    def test_cpu_assignment_round_robin(self):
        w = _Toy(footprint_pages=100, n_processes=8)
        w.attach(_machine())
        cpus = [p.cpu for p in w.processes]
        assert cpus == [0, 1, 2, 3, 4, 5, 0, 1]

    def test_bad_params(self):
        with pytest.raises(ValueError):
            _Toy(footprint_pages=2, n_processes=4)
        with pytest.raises(ValueError):
            _Toy(footprint_pages=4, n_processes=0)


class TestEpoch:
    def test_total_accesses_close_to_config(self):
        w = _Toy(footprint_pages=64, n_processes=4, accesses_per_epoch=1000)
        w.attach(_machine())
        b = w.epoch(0, np.random.default_rng(0))
        assert b.n == 1000

    def test_all_pids_present(self):
        w = _Toy(footprint_pages=64, n_processes=4, accesses_per_epoch=1000)
        w.attach(_machine())
        b = w.epoch(0, np.random.default_rng(0))
        assert set(np.unique(b.pid)) == set(w.pids)

    def test_deterministic_under_seed(self):
        def gen():
            w = _Toy(footprint_pages=64, n_processes=3, accesses_per_epoch=500)
            w.attach(_machine())
            return w.epoch(0, np.random.default_rng(42))

        a, b = gen(), gen()
        np.testing.assert_array_equal(a.vaddr, b.vaddr)
        np.testing.assert_array_equal(a.pid, b.pid)

    def test_machine_executes_without_faults(self):
        m = _machine()
        w = _Toy(footprint_pages=64, n_processes=4, accesses_per_epoch=1000)
        w.attach(m)
        r = m.run_batch(w.epoch(0, np.random.default_rng(0)))
        assert r.n == 1000


class TestInterleave:
    def _stream(self, pid, n):
        return AccessBatch.from_pages(np.arange(n, dtype=np.uint64), pid=pid)

    def test_preserves_per_stream_order(self):
        rng = np.random.default_rng(0)
        out = interleave([self._stream(1, 1000), self._stream(2, 1000)], rng, chunk=64)
        for pid in (1, 2):
            sub = out.vaddr[out.pid == pid] >> 12
            np.testing.assert_array_equal(sub, np.arange(1000))

    def test_actually_interleaves(self):
        rng = np.random.default_rng(0)
        out = interleave([self._stream(1, 1000), self._stream(2, 1000)], rng, chunk=64)
        # The two streams alternate rather than concatenate.
        first_half_pids = set(np.unique(out.pid[:1000]))
        assert first_half_pids == {1, 2}

    def test_single_stream_passthrough(self):
        s = self._stream(1, 10)
        out = interleave([s], np.random.default_rng(0))
        assert out is s

    def test_empty_inputs(self):
        assert interleave([], np.random.default_rng(0)).n == 0
        assert interleave([AccessBatch.empty()], np.random.default_rng(0)).n == 0

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        out = interleave(
            [self._stream(1, 333), self._stream(2, 77), self._stream(3, 500)],
            rng,
            chunk=50,
        )
        assert out.n == 910
        assert int((out.pid == 2).sum()) == 77
